"""Purpose handling: categorical registry plus the lattice extension.

The paper (assumption 4) treats purpose as a *categorical* grouping
principle: two privacy tuples are comparable only when their purposes are
equal, and no violation is measured *along* the purpose axis.

It also anticipates the extension of Ghazinour & Barker (PAIS 2011, the
paper's ref [5]): if purposes are arranged in a structure that yields a
total order, "we could treat purpose as any other privacy dimension without
changing our approach".  :class:`PurposeLattice` implements that structure
as a partial order (a DAG of "purpose *a* is narrower than purpose *b*"),
and :meth:`PurposeLattice.total_order` extracts ranks when the lattice is a
chain — which is exactly what the ordered-purpose ablation benchmark uses.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from .._validation import check_non_empty_str, check_unique
from ..exceptions import UnknownPurposeError, ValidationError


class PurposeRegistry:
    """The set of purposes a deployment recognises.

    Policies and preferences are validated against a registry so typos in
    purpose strings surface at construction time rather than silently making
    tuples incomparable (which would *hide* violations).
    """

    __slots__ = ("_purposes",)

    def __init__(self, purposes: Iterable[str]) -> None:
        names = [check_non_empty_str(p, "purpose") for p in purposes]
        check_unique(names, "purpose")
        if not names:
            raise ValidationError("a purpose registry needs at least one purpose")
        self._purposes = frozenset(names)

    @property
    def purposes(self) -> frozenset[str]:
        """The registered purpose names."""
        return self._purposes

    def __contains__(self, purpose: object) -> bool:
        return purpose in self._purposes

    def __iter__(self):
        return iter(sorted(self._purposes))

    def __len__(self) -> int:
        return len(self._purposes)

    def __repr__(self) -> str:
        return f"PurposeRegistry({sorted(self._purposes)!r})"

    def validate(self, purpose: str) -> str:
        """Return *purpose* if registered, else raise :class:`UnknownPurposeError`."""
        if purpose not in self._purposes:
            raise UnknownPurposeError(purpose)
        return purpose


class PurposeLattice:
    """A partial order over purposes ("*a* is narrower than *b*").

    Edges point from narrower to broader purposes.  The lattice supports:

    * ``leq(a, b)`` — is *a* at most as broad as *b*?
    * ``total_order()`` — if the order is a chain, the rank of each purpose,
      enabling the paper's assumption-4 extension where purpose participates
      in ``diff`` like visibility/granularity/retention.

    The implementation is a plain reachability closure (the lattices in
    practice hold tens of purposes, not millions), so there is no dependency
    on a graph library.
    """

    __slots__ = ("_purposes", "_descendants")

    def __init__(
        self,
        purposes: Iterable[str],
        narrower_than: Iterable[tuple[str, str]] = (),
    ) -> None:
        names = [check_non_empty_str(p, "purpose") for p in purposes]
        check_unique(names, "purpose")
        universe = set(names)
        edges: dict[str, set[str]] = {name: set() for name in names}
        for narrow, broad in narrower_than:
            if narrow not in universe:
                raise UnknownPurposeError(narrow)
            if broad not in universe:
                raise UnknownPurposeError(broad)
            if narrow == broad:
                raise ValidationError(
                    f"self-loop in purpose lattice: {narrow!r}"
                )
            edges[narrow].add(broad)
        self._purposes = frozenset(universe)
        self._descendants = self._transitive_closure(edges)

    @staticmethod
    def _transitive_closure(
        edges: Mapping[str, set[str]]
    ) -> dict[str, frozenset[str]]:
        """Compute, for each purpose, every strictly broader purpose.

        Uses iterative DFS with cycle detection; a cycle would make the
        "narrower than" relation non-antisymmetric, which we reject.
        """
        closure: dict[str, frozenset[str]] = {}

        def visit(node: str, stack: set[str]) -> frozenset[str]:
            if node in closure:
                return closure[node]
            if node in stack:
                raise ValidationError(
                    f"cycle in purpose lattice involving {node!r}"
                )
            stack.add(node)
            reached: set[str] = set()
            for broader in edges[node]:
                reached.add(broader)
                reached |= visit(broader, stack)
            stack.discard(node)
            closure[node] = frozenset(reached)
            return closure[node]

        for name in edges:
            visit(name, set())
        return closure

    @property
    def purposes(self) -> frozenset[str]:
        """All purposes in the lattice."""
        return self._purposes

    def __contains__(self, purpose: object) -> bool:
        return purpose in self._purposes

    def __len__(self) -> int:
        return len(self._purposes)

    def leq(self, narrow: str, broad: str) -> bool:
        """Return True when *narrow* is at most as broad as *broad*."""
        if narrow not in self._purposes:
            raise UnknownPurposeError(narrow)
        if broad not in self._purposes:
            raise UnknownPurposeError(broad)
        return narrow == broad or broad in self._descendants[narrow]

    def comparable(self, a: str, b: str) -> bool:
        """Return True when *a* and *b* are ordered either way."""
        return self.leq(a, b) or self.leq(b, a)

    def is_chain(self) -> bool:
        """Return True when the lattice is totally ordered."""
        names = sorted(self._purposes)
        return all(
            self.comparable(a, b)
            for index, a in enumerate(names)
            for b in names[index + 1 :]
        )

    def total_order(self) -> dict[str, int]:
        """Return purpose → rank when the lattice is a chain.

        Rank 0 is the narrowest purpose; larger ranks are broader (more
        privacy exposure), matching the convention of the ordered domains.

        Raises
        ------
        ValidationError
            If the lattice is not a chain.
        """
        if not self.is_chain():
            raise ValidationError(
                "purpose lattice is not a chain; no total order exists"
            )
        # In a chain, the number of strictly-broader purposes identifies the
        # position from the top; invert it so rank grows with breadth.
        size = len(self._purposes)
        return {
            name: size - 1 - len(self._descendants[name])
            for name in self._purposes
        }

    def registry(self) -> PurposeRegistry:
        """A :class:`PurposeRegistry` holding this lattice's purposes."""
        return PurposeRegistry(self._purposes)


def chain(purposes: Sequence[str]) -> PurposeLattice:
    """Build a totally ordered lattice from narrowest to broadest."""
    names = list(purposes)
    edges = [(names[i], names[i + 1]) for i in range(len(names) - 1)]
    return PurposeLattice(names, edges)

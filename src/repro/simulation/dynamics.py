"""Multi-round default dynamics.

Section 10 anticipates "real-time dynamics occurring between a house and a
set of data providers".  This module runs the simplest faithful version:
the house widens its policy once per round; providers whose accumulated
severity under the *current* policy exceeds their threshold default and
**permanently leave**; the next round is evaluated over the survivors.

Because departures are permanent, the population is non-increasing and the
dynamics always terminate.  Round utilities use Section 9's arithmetic
with the extra utility growing per round, so a run shows the same
rise-then-fall shape as the static sweep but with the *path dependence*
the static analysis cannot capture (early defaulters are not re-counted).
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from typing import Hashable

from .._validation import check_int, check_real
from ..obs import active_observer, span
from ..core.policy import HousePolicy
from ..core.population import Population
from ..perf import BatchReport, make_batch_engine
from ..taxonomy.builder import Taxonomy
from .widening import WideningStep, policy_delta_columns, widen


@dataclass(frozen=True, slots=True)
class RoundOutcome:
    """One round of the widening-and-default dynamics."""

    round_index: int
    policy_name: str
    n_start: int
    n_defaulted: int
    n_remaining: int
    violation_probability: float
    total_violations: float
    utility: float
    defaulted_providers: tuple[Hashable, ...]

    @property
    def retention_rate(self) -> float:
        """Fraction of this round's starting providers who stayed."""
        if self.n_start == 0:
            return 1.0
        return self.n_remaining / self.n_start


def round_policy(
    previous: HousePolicy,
    base_name: str,
    step: WideningStep,
    taxonomy: Taxonomy,
    round_index: int,
) -> HousePolicy:
    """The policy in force at *round_index*, widened from *previous*.

    Round 0 is the base policy renamed ``<base>@r0``; each later round
    widens the previous round's policy once.  Shared with the resumable
    runner so a resumed run reconstructs the identical policy sequence.
    """
    if round_index == 0:
        return HousePolicy(previous.entries, name=f"{base_name}@r0")
    return widen(previous, step, taxonomy, name=f"{base_name}@r{round_index}")


def build_round_outcome(
    report: BatchReport,
    *,
    round_index: int,
    per_provider_utility: float,
    extra_utility_per_round: float,
) -> RoundOutcome:
    """One round's :class:`RoundOutcome` from its batch evaluation.

    Like :func:`repro.simulation.scenario.build_sweep_row`, this is the
    single source of the per-round arithmetic for both
    :func:`run_dynamics` and the resumable runner.
    """
    defaulted = report.defaulted_ids()
    n_start = report.n_providers
    n_remaining = n_start - len(defaulted)
    return RoundOutcome(
        round_index=round_index,
        policy_name=report.policy_name,
        n_start=n_start,
        n_defaulted=len(defaulted),
        n_remaining=n_remaining,
        violation_probability=report.violation_probability,
        total_violations=report.total_violations,
        utility=n_remaining
        * (per_provider_utility + extra_utility_per_round * round_index),
        defaulted_providers=defaulted,
    )


def run_dynamics(
    population: Population,
    base_policy: HousePolicy,
    taxonomy: Taxonomy,
    *,
    rounds: int,
    step: WideningStep | None = None,
    per_provider_utility: float = 1.0,
    extra_utility_per_round: float = 0.25,
    implicit_zero: bool = True,
    workers: int = 1,
) -> list[RoundOutcome]:
    """Run *rounds* rounds of widen-then-default over a shrinking population.

    Round 0 evaluates the base policy; each later round widens once more.
    The utility of a round is ``n_remaining x (U + T x round)`` — what the
    house actually extracts from the providers who stayed through it.

    Returns one :class:`RoundOutcome` per round, including rounds where
    nobody defaults.  Stops early when the population empties.
    ``workers`` selects the execution policy (see
    :func:`~repro.perf.parallel.make_batch_engine`); outcomes are
    identical across settings.
    """
    check_int(rounds, "rounds", minimum=1)
    check_real(per_provider_utility, "per_provider_utility", minimum=0.0)
    check_real(extra_utility_per_round, "extra_utility_per_round", minimum=0.0)
    if step is None:
        step = WideningStep.uniform(1)
    outcomes: list[RoundOutcome] = []
    current_population = population
    current_policy = round_policy(base_policy, base_policy.name, step, taxonomy, 0)
    previous_policy: HousePolicy | None = None
    # One engine — one compilation and, under a parallel execution policy,
    # one worker pool on one shared-memory export — serves every round:
    # departures are tombstoned in place rather than triggering a rebuild,
    # and consecutive round policies ship only their changed columns to
    # the warm workers (the column-delta protocol; docs/performance.md).
    engine = make_batch_engine(
        current_population, workers=workers, implicit_zero=implicit_zero
    )
    obs = active_observer()
    try:
        with span("dynamics.run", providers=len(population), rounds=rounds):
            for round_index in range(rounds):
                if len(current_population) == 0:
                    break
                if round_index > 0:
                    previous_policy = current_policy
                    current_policy = round_policy(
                        current_policy, base_policy.name, step, taxonomy, round_index
                    )
                if obs is not None and previous_policy is not None:
                    obs.inc(
                        "dynamics.policy_columns_changed",
                        len(policy_delta_columns(previous_policy, current_policy)),
                    )
                report = engine.evaluate(current_policy)
                outcome = build_round_outcome(
                    report,
                    round_index=round_index,
                    per_provider_utility=per_provider_utility,
                    extra_utility_per_round=extra_utility_per_round,
                )
                outcomes.append(outcome)
                if obs is not None:
                    obs.inc("dynamics.rounds")
                    obs.inc("dynamics.departures", outcome.n_defaulted)
                if outcome.defaulted_providers:
                    current_population = current_population.without(
                        outcome.defaulted_providers
                    )
                    engine.remove(outcome.defaulted_providers)
    finally:
        engine.close()
    return outcomes


def surviving_ids(outcomes: list[RoundOutcome], population: Population) -> Iterator[Hashable]:
    """The providers still present after the last recorded round."""
    departed = {
        provider_id
        for outcome in outcomes
        for provider_id in outcome.defaulted_providers
    }
    for provider in population:
        if provider.provider_id not in departed:
            yield provider.provider_id

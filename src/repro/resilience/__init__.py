"""Resilience layer: fault injection, resumable runs, engine guardrails.

A production alpha-PPDB service must stay trustworthy under operational
failure, not just on the happy path: a locked sqlite file, a crash
between sweep steps, or a NaN sneaking into the batch engine's arrays
must never turn into a silently wrong certificate.  This package holds
the machinery that makes those failure modes testable and survivable:

* :mod:`repro.resilience.faults` — a deterministic, seed-driven
  fault-injection harness (:class:`FaultPlan` / :class:`FaultProxy`)
  that interposes on sqlite connections and the batch engine to inject
  locked-database errors, disk-full errors, simulated process kills,
  corrupted bytes, and NaN-poisoned arrays at scripted points;
* :mod:`repro.resilience.journal` — :class:`RunJournal`, a
  sqlite-backed, checksum-chained checkpoint store so long runs resume
  bit-for-bit identical to an uninterrupted run;
* :mod:`repro.resilience.resume` — resumable wrappers over the Section 9
  widening sweep, the multi-round dynamics, and the Section 10 forecast
  replay, each checkpointing one journal step per unit of work;
* :mod:`repro.resilience.guardrail` — :class:`GuardedBatchEngine`, which
  samples the vectorized engine's outputs against the reference
  :class:`~repro.core.engine.ViolationEngine` oracle at runtime and
  degrades gracefully to the oracle on divergence or non-finite
  severities, emitting coded diagnostics;
* :mod:`repro.resilience.diagnostics` — the stable ``PVL3xx``/``PVL9xx``
  codes the guardrail and the CLI error paths report under.

``docs/resilience.md`` describes the fault model, the journal format,
resume semantics, and the degradation policy.
"""

from .diagnostics import (
    CLI_DOCUMENT,
    CLI_INTERRUPTED,
    CLI_IO,
    CLI_JOURNAL,
    CLI_JSON,
    CLI_STORAGE,
    GUARDRAIL_DEGRADED,
    GUARDRAIL_DIVERGENCE,
    GUARDRAIL_NONFINITE,
    coded_error,
)
from .faults import FaultPlan, FaultProxy, FaultSpec, active_plan
from .guardrail import GuardedBatchEngine
from .journal import RunJournal, journal_summary
from .resume import (
    journal_fingerprint,
    population_fingerprint,
    resumable_dynamics,
    resumable_forecast,
    resumable_sweep,
)

__all__ = [
    "CLI_DOCUMENT",
    "CLI_INTERRUPTED",
    "CLI_IO",
    "CLI_JOURNAL",
    "CLI_JSON",
    "CLI_STORAGE",
    "GUARDRAIL_DEGRADED",
    "GUARDRAIL_DIVERGENCE",
    "GUARDRAIL_NONFINITE",
    "FaultPlan",
    "FaultProxy",
    "FaultSpec",
    "GuardedBatchEngine",
    "RunJournal",
    "active_plan",
    "coded_error",
    "journal_fingerprint",
    "journal_summary",
    "population_fingerprint",
    "resumable_dynamics",
    "resumable_forecast",
    "resumable_sweep",
]

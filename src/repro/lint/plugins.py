"""External rule registration: the ``repro.lint`` plugin API.

Third-party packages extend the linter two ways, both landing in the
same PVL registry (and so in reports, ``--select``/``--ignore``, exit
codes, and every output format) as the built-in rules:

* **decorator** — import :func:`lint_rule` and register directly::

      from repro.lint.plugins import lint_rule

      @lint_rule(
          "ACME001",
          title="purpose naming convention",
          severity="warning",
          description="Purposes must be lowercase snake_case.",
      )
      def check_purpose_names(ctx, emit): ...

* **entry point** — declare ``[project.entry-points."repro.lint.rules"]``
  in the plugin's packaging metadata.  Each entry point may resolve to a
  module (imported for its decorator side effects) or to a callable
  (invoked once with no arguments to perform the registration).  Entry
  points load lazily the first time the catalogue is consulted; a broken
  plugin is recorded (see :func:`plugin_load_errors`) and skipped rather
  than taking the linter down.

Plugin codes must not collide with registered codes (built-in ``PVL``
codes included) — collisions raise
:class:`~repro.exceptions.LintConfigurationError` at registration time.
"""

from __future__ import annotations

from collections.abc import Callable
from contextlib import contextmanager
from importlib import metadata
from typing import Iterator

from ..obs import active_observer
from .diagnostics import Severity
from .registry import CheckFunction, Layer, rule, unregister_rule

#: The packaging entry-point group external rules register under.
ENTRY_POINT_GROUP = "repro.lint.rules"

_loaded = False
_load_errors: list[tuple[str, str]] = []


def lint_rule(
    code: str,
    *,
    title: str,
    severity: Severity | str = Severity.WARNING,
    layer: Layer | str = Layer.MODEL,
    description: str,
    scope: str = "global",
) -> Callable[[CheckFunction], CheckFunction]:
    """Register an external check function under a stable code.

    The plugin-facing twin of the internal :func:`~repro.lint.registry.rule`
    decorator: *severity* and *layer* additionally accept their string
    forms (``"warning"``, ``"population"``, ...) so plugins do not need
    to import the enums.
    """
    if isinstance(severity, str):
        severity = Severity.from_name(severity)
    if isinstance(layer, str):
        layer = Layer(layer)
    return rule(
        code,
        title=title,
        severity=severity,
        layer=layer,
        description=description,
        scope=scope,
    )


@contextmanager
def registered_rule(
    code: str,
    check: CheckFunction,
    *,
    title: str,
    severity: Severity | str = Severity.WARNING,
    layer: Layer | str = Layer.MODEL,
    description: str = "",
    scope: str = "global",
) -> Iterator[None]:
    """Temporarily register *check* — unregistered on exit.

    Test helper: plugin test suites use this to exercise a rule against
    the full pipeline without leaking registry state between tests.
    """
    lint_rule(
        code,
        title=title,
        severity=severity,
        layer=layer,
        description=description,
        scope=scope,
    )(check)
    try:
        yield
    finally:
        unregister_rule(code)


def _entry_points():
    """The registered entry points (isolated for tests to monkeypatch)."""
    return metadata.entry_points(group=ENTRY_POINT_GROUP)


def load_entry_point_rules(*, force: bool = False) -> tuple[str, ...]:
    """Load every ``repro.lint.rules`` entry point (idempotent).

    Returns the names of the entry points loaded this call.  Failures —
    an unimportable module, a registration collision, a callable that
    raises — are collected in :func:`plugin_load_errors` and skipped, so
    one broken plugin cannot disable the linter.
    """
    global _loaded
    if _loaded and not force:
        return ()
    _loaded = True
    loaded: list[str] = []
    try:
        entry_points = list(_entry_points())
    except Exception as error:  # metadata backend failure: no plugins
        _load_errors.append(("<entry-points>", str(error)))
        return ()
    obs = active_observer()
    for entry_point in entry_points:
        try:
            target = entry_point.load()
            # A module registers by import side effect; a callable is
            # invoked once to perform its registrations.
            if callable(target):
                target()
            loaded.append(entry_point.name)
            if obs is not None:
                obs.inc("lint.plugins_loaded")
        except Exception as error:
            _load_errors.append((entry_point.name, str(error)))
            if obs is not None:
                obs.inc("lint.plugin_errors")
    return tuple(loaded)


def plugin_load_errors() -> tuple[tuple[str, str], ...]:
    """``(entry point name, error)`` pairs from failed plugin loads."""
    return tuple(_load_errors)


def reset_plugins() -> None:
    """Forget load state and recorded errors (test isolation helper)."""
    global _loaded
    _loaded = False
    _load_errors.clear()

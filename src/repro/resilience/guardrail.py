"""The engine guardrail: spot-check the fast path, degrade to the oracle.

:class:`~repro.perf.batch.BatchViolationEngine` is two orders of
magnitude faster than the reference :class:`~repro.core.engine.
ViolationEngine`, but a certificate built on a silently-wrong severity
array is worse than a slow one.  :class:`GuardedBatchEngine` wraps the
batch engine and, on every evaluation,

1. rejects any report with **non-finite** severities or aggregates
   (``PVL302``);
2. **samples** a seeded handful of providers and recomputes their
   severity, violated flag, and default verdict through the per-provider
   reference path (:func:`~repro.core.violation.find_violations`) —
   any disagreement beyond tolerance is a divergence (``PVL301``).

On the first failed check the guardrail *degrades*: it emits a
``PVL303`` warning, discards the batch result, and serves this and every
later evaluation from the reference engine.  The run completes with
correct numbers on the slow path, and the structured diagnostics (the
same :class:`~repro.lint.diagnostics.Diagnostic` shape the static
analyzer emits) record exactly what was caught and where.

The sampling oracle is deliberately *not* the batch engine's own parity
harness: it recomputes from the population's raw preferences and
sensitivities, sharing no intermediate state with the code under guard.

Parallel guarding
-----------------
With ``workers > 1`` the guarded engine runs the supervised worker pool
(:class:`~repro.perf.supervisor.SupervisedExecutor`) underneath and the
spot-check samples **per shard**: each shard contributes its own seeded
sample (seed derived from the guardrail seed, the evaluation ordinal,
and the shard index — independent of worker scheduling), and verdicts
merge deterministically because shards are checked in shard order and
the first failure wins.  ``--guarded`` and ``--workers`` therefore
compose: the same workload always spot-checks the same rows and
degrades (or not) identically, regardless of how tasks landed on
workers.  The oracle itself always runs in the parent.
"""

from __future__ import annotations

import random

import numpy as np

from ..core.default import DefaultModel
from ..core.engine import ViolationEngine
from ..core.policy import HousePolicy
from ..core.population import Population
from ..core.ppdb import PPDBCertificate
from ..core.sensitivity import SensitivityModel
from ..core.violation import find_violations
from ..lint.diagnostics import Diagnostic
from ..obs import active_observer
from ..perf.batch import BatchReport
from ..perf.parallel import make_batch_engine, resolve_workers
from .diagnostics import (
    GUARDRAIL_DEGRADED,
    GUARDRAIL_DIVERGENCE,
    GUARDRAIL_NONFINITE,
    guardrail_diagnostic,
)
from .faults import active_plan

#: Default number of providers spot-checked per evaluation.
SAMPLE_SIZE = 4

#: Absolute severity tolerance for a sampled comparison.  The batch and
#: reference engines are bit-for-bit equal by the parity suite, so any
#: nonzero drift is already suspicious; the tolerance only forgives
#: benign float-summation reordering.
SEVERITY_TOLERANCE = 1e-9


class GuardedBatchEngine:
    """A :class:`BatchViolationEngine` with an oracle safety net.

    Drop-in for the batch engine's ``evaluate``/``report``/``certify``
    surface.  Checks are deterministic: the provider sample is drawn
    from ``random.Random(seed)``, so a given workload always spot-checks
    the same rows.

    After a check fails the engine is *degraded* (see :attr:`degraded`):
    all subsequent evaluations use the reference engine, and
    :attr:`diagnostics` carries the structured findings.

    With ``workers > 1`` (or 0 = auto) the wrapped engine is the
    supervised worker pool and sampling is per shard (see the module
    docstring); the serial sampling behaviour — and thus every existing
    seeded workload — is unchanged at ``workers=1``.
    """

    def __init__(
        self,
        population: Population,
        *,
        sensitivities: SensitivityModel | None = None,
        default_model: DefaultModel | None = None,
        implicit_zero: bool = True,
        sample_size: int = SAMPLE_SIZE,
        tolerance: float = SEVERITY_TOLERANCE,
        seed: int = 0,
        workers: int = 1,
    ) -> None:
        self._workers = resolve_workers(workers)
        self._batch = make_batch_engine(
            population,
            workers=self._workers,
            sensitivities=sensitivities,
            default_model=default_model,
            implicit_zero=implicit_zero,
        )
        self._sample_size = int(sample_size)
        self._tolerance = float(tolerance)
        self._seed = int(seed)
        self._rng = random.Random(seed)
        self._evaluations = 0
        self._degraded = False
        self._diagnostics: list[Diagnostic] = []

    # -- state ---------------------------------------------------------------

    @property
    def population(self) -> Population:
        """The underlying population."""
        return self._batch.population

    @property
    def implicit_zero(self) -> bool:
        """Whether the implicit-zero completion is applied."""
        return self._batch.implicit_zero

    @property
    def workers(self) -> int:
        """The resolved worker count of the wrapped engine."""
        return self._workers

    @property
    def degraded(self) -> bool:
        """True once any evaluation has fallen back to the reference engine."""
        return self._degraded

    @property
    def diagnostics(self) -> tuple[Diagnostic, ...]:
        """Structured findings from every failed check so far."""
        return tuple(self._diagnostics)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release the wrapped engine (worker pool and shared memory)."""
        self._batch.close()

    def __enter__(self) -> "GuardedBatchEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- mutation ------------------------------------------------------------

    def remove(self, provider_ids) -> None:
        """Tombstone departed providers in the wrapped engine.

        Delegates to :meth:`~repro.perf.delta.MutableBatchEngine.remove`;
        subsequent evaluations (and degraded-mode reference evaluations,
        which read :attr:`population`) see only the survivors.
        """
        self._batch.remove(provider_ids)

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, policy: HousePolicy) -> BatchReport:
        """Evaluate *policy*, spot-checked; degraded mode uses the oracle."""
        obs = active_observer()
        if self._degraded:
            if obs is not None:
                obs.inc("guardrail.reference_evaluations")
            return self._reference_report(policy)
        report = self._batch.evaluate(policy)
        plan = active_plan()
        if plan is not None:
            poisoned = plan.poison_array("engine.violations", report.violations)
            if poisoned is not report.violations:
                report = self._repoison(report, poisoned)
        failure = self._check(policy, report)
        if obs is not None:
            obs.inc("guardrail.checks")
        if failure is None:
            return report
        self._degrade(policy, failure)
        if obs is not None:
            obs.inc("guardrail.reference_evaluations")
        return self._reference_report(policy)

    # ``report`` mirrors the batch engine's alias.
    def report(self, policy: HousePolicy) -> BatchReport:
        """Alias of :meth:`evaluate`."""
        return self.evaluate(policy)

    def certify(self, policy: HousePolicy, alpha: float) -> PPDBCertificate:
        """Definition 3's alpha-PPDB certificate, from a guarded evaluation.

        The certificate is always derived from a report that passed (or
        was replaced after failing) the guardrail checks — never from an
        unchecked fast-path evaluation.
        """
        self.evaluate(policy)
        if self._degraded:
            return self._reference_engine(policy).certify(alpha)
        return self._batch.certify(policy, alpha)

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _repoison(report: BatchReport, violations: np.ndarray) -> BatchReport:
        """Rebuild a report around a fault-poisoned severity array.

        Only the severity array and its dependent aggregate are replaced;
        the boolean views keep their pre-poisoning values, exactly like a
        kernel bug that mangles one output array but not the others.
        """
        return BatchReport(
            policy_name=report.policy_name,
            n_providers=report.n_providers,
            n_violated=report.n_violated,
            n_defaulted=report.n_defaulted,
            violation_probability=report.violation_probability,
            default_probability=report.default_probability,
            total_violations=float(np.sum(violations)),
            provider_ids=report.provider_ids,
            violations=violations,
            violated=report.violated,
            defaulted=report.defaulted,
            thresholds=report.thresholds,
            segments=report.segments,
        )

    def _check(
        self, policy: HousePolicy, report: BatchReport
    ) -> Diagnostic | None:
        """Run the guardrail checks; the first failure's diagnostic, or None."""
        if report.n_providers == 0:
            return None
        if not (
            np.isfinite(report.violations).all()
            and np.isfinite(report.total_violations)
        ):
            bad = [
                report.provider_ids[row]
                for row in np.flatnonzero(~np.isfinite(report.violations))
            ]
            return guardrail_diagnostic(
                GUARDRAIL_NONFINITE,
                f"batch engine produced non-finite severities under policy "
                f"{report.policy_name!r}",
                policy_name=report.policy_name,
                payload={"providers": [repr(pid) for pid in bad[:8]]},
            )
        compiled = self._batch.compiled
        sensitivities = compiled.sensitivities
        default_model = compiled.default_model
        providers = self.population.providers
        n = len(providers)
        rows = self._sample_rows(n)
        for row in rows:
            provider = providers[row]
            findings = find_violations(
                provider.preferences,
                policy,
                sensitivities,
                implicit_zero=self._batch.implicit_zero,
            )
            violation = sum(finding.weighted for finding in findings)
            violated = bool(findings)
            defaulted = bool(
                default_model.defaults(provider.provider_id, violation)
            )
            batch_violation = float(report.violations[row])
            if (
                abs(batch_violation - violation) > self._tolerance
                or bool(report.violated[row]) != violated
                or bool(report.defaulted[row]) != defaulted
            ):
                return guardrail_diagnostic(
                    GUARDRAIL_DIVERGENCE,
                    f"batch engine diverged from the reference oracle for "
                    f"provider {provider.provider_id!r} under policy "
                    f"{report.policy_name!r}: severity {batch_violation!r} "
                    f"vs {violation!r}",
                    policy_name=report.policy_name,
                    payload={
                        "provider": repr(provider.provider_id),
                        "batch_violation": batch_violation,
                        "reference_violation": violation,
                    },
                )
        return None

    def _sample_rows(self, n: int) -> list[int]:
        """The provider rows this evaluation spot-checks, in check order.

        Serial mode draws from the engine's one stateful RNG — exactly
        the pre-parallel behaviour, so existing seeded workloads keep
        their samples.  Parallel mode draws one seeded sample *per
        shard* from an RNG keyed ``(seed, evaluation ordinal, shard
        index)`` — a pure function of the guardrail configuration and
        the shard layout, never of worker scheduling — and concatenates
        them in shard order, which is what makes the merged verdict
        deterministic under ``--workers``.
        """
        self._evaluations += 1
        if self._workers <= 1:
            return sorted(self._rng.sample(range(n), min(self._sample_size, n)))
        rows: list[int] = []
        for index, (lo, hi) in enumerate(self._batch.bounds):
            size = hi - lo
            if size == 0:
                continue
            rng = random.Random(
                (self._seed * 1_000_003 + self._evaluations) * 1_000_003
                + index
            )
            sample = rng.sample(range(size), min(self._sample_size, size))
            rows.extend(lo + offset for offset in sorted(sample))
        return rows

    def _degrade(self, policy: HousePolicy, failure: Diagnostic) -> None:
        self._degraded = True
        obs = active_observer()
        if obs is not None:
            obs.inc("guardrail.failures", code=failure.code)
            obs.inc("guardrail.degradations")
        self._diagnostics.append(failure)
        self._diagnostics.append(
            guardrail_diagnostic(
                GUARDRAIL_DEGRADED,
                f"degrading to the reference engine from policy "
                f"{policy.name!r} onward after {failure.code}",
                policy_name=policy.name,
                payload={"trigger": failure.code},
            )
        )

    def _reference_engine(self, policy: HousePolicy) -> ViolationEngine:
        return self._batch.reference_engine(policy)

    def _reference_report(self, policy: HousePolicy) -> BatchReport:
        """A :class:`BatchReport` computed wholly by the reference engine."""
        engine = self._reference_engine(policy)
        outcomes = engine.outcomes()
        summary = engine.report()
        return BatchReport(
            policy_name=summary.policy_name,
            n_providers=summary.n_providers,
            n_violated=summary.n_violated,
            n_defaulted=summary.n_defaulted,
            violation_probability=summary.violation_probability,
            default_probability=summary.default_probability,
            total_violations=summary.total_violations,
            provider_ids=tuple(outcome.provider_id for outcome in outcomes),
            violations=np.array(
                [outcome.violation for outcome in outcomes], dtype=np.float64
            ),
            violated=np.array(
                [outcome.violated for outcome in outcomes], dtype=bool
            ),
            defaulted=np.array(
                [outcome.defaulted for outcome in outcomes], dtype=bool
            ),
            thresholds=np.array(
                [outcome.threshold for outcome in outcomes], dtype=np.float64
            ),
            segments=tuple(outcome.segment for outcome in outcomes),
        )

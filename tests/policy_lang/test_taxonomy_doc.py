"""Unit tests for taxonomy documents."""

from __future__ import annotations

import json

import pytest

from repro.core import Dimension
from repro.core.dimensions import UnboundedRetention
from repro.exceptions import PolicyDocumentError
from repro.policy_lang import (
    parse_taxonomy,
    taxonomy_from_json,
    taxonomy_to_dict,
    taxonomy_to_json,
)
from repro.taxonomy import TaxonomyBuilder, standard_taxonomy

DOC = {
    "purposes": ["billing", "research"],
    "visibility": ["none", "clinic", "public"],
    "granularity": ["none", "range", "exact"],
    "retention": ["none", "visit", "year"],
}


class TestParseTaxonomy:
    def test_full_document(self):
        taxonomy = parse_taxonomy(DOC)
        assert set(taxonomy.purposes.purposes) == {"billing", "research"}
        assert taxonomy.domain(Dimension.VISIBILITY).max_rank == 2
        assert taxonomy.tuple("billing", "clinic", "exact", "year").retention == 2

    def test_missing_ladders_default_to_canonical(self):
        taxonomy = parse_taxonomy({"purposes": ["p"]})
        assert taxonomy.domain(Dimension.VISIBILITY).max_rank == 4

    def test_unbounded_retention(self):
        taxonomy = parse_taxonomy(
            {"purposes": ["p"], "retention": "unbounded"}
        )
        assert isinstance(
            taxonomy.domain(Dimension.RETENTION), UnboundedRetention
        )

    def test_missing_purposes_rejected(self):
        with pytest.raises(PolicyDocumentError):
            parse_taxonomy({"visibility": ["a"]})

    def test_unknown_keys_rejected(self):
        with pytest.raises(PolicyDocumentError):
            parse_taxonomy({"purposes": ["p"], "colour": ["red"]})

    def test_bad_retention_value_rejected(self):
        with pytest.raises(PolicyDocumentError):
            parse_taxonomy({"purposes": ["p"], "retention": 5})

    def test_non_mapping_rejected(self):
        with pytest.raises(PolicyDocumentError):
            parse_taxonomy(["purposes"])  # type: ignore[arg-type]


class TestRoundTrips:
    def test_named_ladders_round_trip(self):
        taxonomy = parse_taxonomy(DOC)
        again = parse_taxonomy(taxonomy_to_dict(taxonomy))
        assert taxonomy_to_dict(again) == taxonomy_to_dict(taxonomy)

    def test_standard_taxonomy_round_trips(self):
        taxonomy = standard_taxonomy(["a", "b"])
        document = taxonomy_to_dict(taxonomy)
        again = parse_taxonomy(document)
        assert taxonomy_to_dict(again) == document

    def test_unbounded_round_trips(self):
        taxonomy = (
            TaxonomyBuilder().with_purposes(["p"]).with_retention_unbounded().build()
        )
        document = taxonomy_to_dict(taxonomy)
        assert document["retention"] == "unbounded"
        again = parse_taxonomy(document)
        assert isinstance(again.domain(Dimension.RETENTION), UnboundedRetention)

    def test_json_round_trip(self):
        taxonomy = parse_taxonomy(DOC)
        text = taxonomy_to_json(taxonomy)
        again = taxonomy_from_json(text)
        assert taxonomy_to_dict(again) == json.loads(text)

    def test_invalid_json_wrapped(self):
        with pytest.raises(PolicyDocumentError):
            taxonomy_from_json("{oops")

"""Unit tests for the ordered-purpose extension (assumption 4)."""

from __future__ import annotations

import pytest

from repro.core import Dimension, HousePolicy, PrivacyTuple, ProviderPreferences
from repro.core.purpose import chain
from repro.core.purpose_extension import (
    find_violations_ordered_purpose,
    provider_violation_ordered_purpose,
    violation_indicator_ordered_purpose,
)
from repro.core.violation import find_violations, violation_indicator
from repro.exceptions import ValidationError

ORDER = {"single": 0, "reuse": 1, "any": 2}


@pytest.fixture()
def prefs():
    return ProviderPreferences(
        "i", [("weight", PrivacyTuple("single", 2, 2, 2))]
    )


class TestPurposeExceedance:
    def test_broader_purpose_is_a_violation(self, prefs):
        policy = HousePolicy([("weight", PrivacyTuple("any", 2, 2, 2))])
        findings = find_violations_ordered_purpose(prefs, policy, ORDER)
        purpose_findings = [
            f for f in findings if f.dimension is Dimension.PURPOSE
        ]
        assert len(purpose_findings) == 1
        assert purpose_findings[0].amount == 2

    def test_same_purpose_no_purpose_finding(self, prefs):
        policy = HousePolicy([("weight", PrivacyTuple("single", 3, 2, 2))])
        findings = find_violations_ordered_purpose(prefs, policy, ORDER)
        assert all(f.dimension is not Dimension.PURPOSE for f in findings)
        assert len(findings) == 1  # the visibility exceedance

    def test_narrower_purpose_cannot_violate(self):
        prefs = ProviderPreferences(
            "i", [("weight", PrivacyTuple("any", 0, 0, 0))]
        )
        policy = HousePolicy([("weight", PrivacyTuple("single", 5, 5, 5))])
        assert find_violations_ordered_purpose(prefs, policy, ORDER) == []

    def test_cross_purpose_vgr_now_compared(self, prefs):
        # Categorical model sees these as incomparable (plus an implicit
        # zero); ordered model compares them directly.
        policy = HousePolicy([("weight", PrivacyTuple("reuse", 3, 2, 2))])
        findings = find_violations_ordered_purpose(prefs, policy, ORDER)
        dims = {f.dimension for f in findings}
        assert dims == {Dimension.PURPOSE, Dimension.VISIBILITY}

    def test_chain_lattice_accepted(self, prefs):
        lattice = chain(["single", "reuse", "any"])
        policy = HousePolicy([("weight", PrivacyTuple("any", 2, 2, 2))])
        assert violation_indicator_ordered_purpose(prefs, policy, lattice) == 1

    def test_uncovered_purpose_rejected(self, prefs):
        policy = HousePolicy([("weight", PrivacyTuple("mystery", 2, 2, 2))])
        with pytest.raises(ValidationError):
            find_violations_ordered_purpose(prefs, policy, ORDER)

    def test_empty_order_rejected(self, prefs):
        policy = HousePolicy([("weight", PrivacyTuple("single", 2, 2, 2))])
        with pytest.raises(ValidationError):
            find_violations_ordered_purpose(prefs, policy, {})

    def test_invalid_rank_rejected(self, prefs):
        policy = HousePolicy([("weight", PrivacyTuple("single", 2, 2, 2))])
        with pytest.raises(ValidationError):
            find_violations_ordered_purpose(
                prefs, policy, {"single": -1}
            )


class TestLatticePurposeVariant:
    """The partial-order ([5] lattice) variant, no total order required."""

    @pytest.fixture()
    def diamond(self):
        from repro.core.purpose import PurposeLattice

        # single -> {billing, research} -> any
        return PurposeLattice(
            ["single", "billing", "research", "any"],
            [
                ("single", "billing"),
                ("single", "research"),
                ("billing", "any"),
                ("research", "any"),
            ],
        )

    def test_broader_reuse_at_same_ranks_is_unit_purpose_finding(self, diamond):
        from repro.core.purpose_extension import find_violations_lattice_purpose

        prefs = ProviderPreferences(
            "i", [("weight", PrivacyTuple("single", 2, 2, 2))]
        )
        policy = HousePolicy([("weight", PrivacyTuple("any", 2, 2, 2))])
        findings = find_violations_lattice_purpose(prefs, policy, diamond)
        assert len(findings) == 1
        assert findings[0].dimension is Dimension.PURPOSE
        assert findings[0].amount == 1

    def test_incomparable_siblings_never_conflict(self, diamond):
        from repro.core.purpose_extension import find_violations_lattice_purpose

        prefs = ProviderPreferences(
            "i", [("weight", PrivacyTuple("billing", 0, 0, 0))]
        )
        policy = HousePolicy([("weight", PrivacyTuple("research", 5, 5, 5))])
        assert find_violations_lattice_purpose(prefs, policy, diamond) == []

    def test_rank_exceedance_under_broader_purpose(self, diamond):
        from repro.core.purpose_extension import find_violations_lattice_purpose

        prefs = ProviderPreferences(
            "i", [("weight", PrivacyTuple("single", 2, 2, 2))]
        )
        policy = HousePolicy([("weight", PrivacyTuple("any", 3, 2, 2))])
        findings = find_violations_lattice_purpose(prefs, policy, diamond)
        # The rank exceedance is reported; the unit purpose marker is not
        # added on top (the reuse is already surfaced by the V finding).
        assert {f.dimension for f in findings} == {Dimension.VISIBILITY}

    def test_narrower_purpose_never_conflicts(self, diamond):
        from repro.core.purpose_extension import find_violations_lattice_purpose

        prefs = ProviderPreferences(
            "i", [("weight", PrivacyTuple("any", 0, 0, 0))]
        )
        policy = HousePolicy([("weight", PrivacyTuple("single", 5, 5, 5))])
        assert find_violations_lattice_purpose(prefs, policy, diamond) == []

    def test_same_purpose_matches_categorical(self, diamond):
        from repro.core.purpose_extension import find_violations_lattice_purpose

        prefs = ProviderPreferences(
            "i", [("weight", PrivacyTuple("billing", 1, 1, 1))]
        )
        policy = HousePolicy([("weight", PrivacyTuple("billing", 2, 2, 2))])
        lattice_findings = find_violations_lattice_purpose(
            prefs, policy, diamond
        )
        categorical = find_violations(prefs, policy)
        assert {(f.dimension, f.amount) for f in lattice_findings} == {
            (f.dimension, f.amount) for f in categorical
        }

    def test_unknown_purpose_rejected(self, diamond):
        from repro.core.purpose_extension import find_violations_lattice_purpose

        prefs = ProviderPreferences(
            "i", [("weight", PrivacyTuple("mystery", 1, 1, 1))]
        )
        policy = HousePolicy([("weight", PrivacyTuple("any", 2, 2, 2))])
        with pytest.raises(ValidationError):
            find_violations_lattice_purpose(prefs, policy, diamond)


class TestAgainstCategoricalBaseline:
    def test_extension_surfaces_at_least_categorical_same_purpose(self, prefs):
        """For a single-purpose world the two models agree exactly."""
        policy = HousePolicy([("weight", PrivacyTuple("single", 4, 2, 3))])
        ordered = find_violations_ordered_purpose(prefs, policy, ORDER)
        categorical = find_violations(prefs, policy)
        assert {(f.dimension, f.amount) for f in ordered} == {
            (f.dimension, f.amount) for f in categorical
        }

    def test_extension_finds_violations_categorical_misses(self, prefs):
        """Without the implicit-zero rule the categorical model is blind to
        broader-purpose reuse; the ordered model flags it."""
        policy = HousePolicy([("weight", PrivacyTuple("any", 2, 2, 2))])
        assert (
            violation_indicator(prefs, policy, implicit_zero=False) == 0
        )
        assert violation_indicator_ordered_purpose(prefs, policy, ORDER) == 1

    def test_severity_weighting_consistent(self, prefs):
        from repro.core import (
            AttributeSensitivities,
            DimensionSensitivity,
            ProviderSensitivity,
            SensitivityModel,
        )

        model = SensitivityModel(
            AttributeSensitivities({"weight": 4.0}),
            {
                "i": ProviderSensitivity(
                    "i", {"weight": DimensionSensitivity(value=2.0)}
                )
            },
        )
        policy = HousePolicy([("weight", PrivacyTuple("any", 2, 2, 2))])
        severity = provider_violation_ordered_purpose(
            prefs, policy, ORDER, model
        )
        # Purpose exceedance 2 x Sigma 4 x s 2 (dimension weight 1).
        assert severity == 16.0

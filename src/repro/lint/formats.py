"""Render a :class:`LintReport` as text, JSON, or SARIF.

The text form is for terminals, the JSON form for scripting, and the
SARIF 2.1.0 form for code-scanning UIs (GitHub code scanning consumes it
directly).  SARIF maps severities ``error``/``warning``/``info`` onto its
``error``/``warning``/``note`` levels.
"""

from __future__ import annotations

import json

from ..exceptions import LintConfigurationError
from .diagnostics import Diagnostic, Severity
from .registry import all_rules
from .report import LintReport

#: The output formats the CLI accepts.
FORMATS = ("text", "json", "sarif")

_SARIF_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def render(report: LintReport, format: str = "text") -> str:
    """Render *report* in the named format."""
    if format == "text":
        return render_text(report)
    if format == "json":
        return render_json(report)
    if format == "sarif":
        return render_sarif(report)
    raise LintConfigurationError(
        f"unknown lint output format {format!r}; expected one of "
        f"{', '.join(FORMATS)}"
    )


def render_text(report: LintReport) -> str:
    """One line per diagnostic plus a summary line."""
    lines = [str(diagnostic) for diagnostic in report.diagnostics]
    summary = report.summary()
    if summary["total"]:
        lines.append(
            f"{summary['total']} finding(s): {summary['errors']} error(s), "
            f"{summary['warnings']} warning(s), {summary['infos']} info(s)"
        )
    else:
        lines.append("no findings")
    return "\n".join(lines)


def render_json(report: LintReport, *, indent: int = 2) -> str:
    """The report's dict form as JSON text (key-sorted, so byte-stable)."""
    return json.dumps(report.as_dict(), indent=indent, sort_keys=True)


def render_sarif(report: LintReport, *, indent: int = 2) -> str:
    """A minimal SARIF 2.1.0 log with the full rule catalogue attached."""
    rules = [
        {
            "id": info.code,
            "name": info.title.title().replace(" ", "").replace("-", ""),
            "shortDescription": {"text": info.title},
            "fullDescription": {"text": info.description},
            "defaultConfiguration": {"level": _SARIF_LEVELS[info.severity]},
        }
        for info in all_rules()
    ]
    results = [_sarif_result(diagnostic) for diagnostic in report.diagnostics]
    log = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro/docs/linting"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=indent, sort_keys=True)


def _sarif_result(diagnostic: Diagnostic) -> dict:
    location = diagnostic.location
    fq_name = location.describe()
    if location.field:
        fq_name = f"{fq_name}.{location.field}"
    return {
        "ruleId": diagnostic.code,
        "level": _SARIF_LEVELS[diagnostic.severity],
        "message": {"text": diagnostic.message},
        "locations": [
            {
                "logicalLocations": [
                    {
                        "fullyQualifiedName": fq_name,
                        "kind": location.document,
                    }
                ]
            }
        ],
        "properties": dict(diagnostic.payload),
    }

"""CRM: should the retailer start reselling customer data?

Section 9 in action.  The retailer currently collects for fulfillment and
marketing; resale of contact/purchase data to third parties would unlock
extra revenue T per customer — but violates everyone who never consented
to resale and pushes some past their default thresholds.

The example answers three questions:

1. *One-shot what-if* — does the named ``crm-with-resale`` policy pay at a
   given T?  (Eq. 31's break-even against the measured defaults.)
2. *How far can widening go at all* — the full expansion sweep, its peak,
   and its crossover into detriment.
3. *What would a rational house do* — the best response, vs the myopic
   greedy house that widens until it hurts.

Run:  python examples/crm_expansion_economics.py
"""

from repro.analysis import default_cdf_from_sweep, format_table, pareto_frontier
from repro.datasets import crm_scenario
from repro.datasets.crm import crm_resale_policy
from repro.game import GreedyWidening, best_response, play_widening_game
from repro.simulation import (
    WhatIfAnalyzer,
    WideningStep,
    run_expansion_sweep,
)

scenario = crm_scenario(n_providers=300, seed=23)
U = scenario.per_provider_utility
print(f"scenario: {scenario}  (U = {U} per customer)")
print()

# --- 1. the resale what-if -------------------------------------------------
analyzer = WhatIfAnalyzer(
    scenario.population, scenario.policy, per_provider_utility=U, alpha=0.05
)
resale = crm_resale_policy(scenario.taxonomy)
for extra in (0.5, 1.5, 3.0):
    result = analyzer.assess(resale, extra_utility=extra)
    print(f"T = {extra:>4}: {result.summary()}")
print()

# --- 2. the widening sweep --------------------------------------------------
sweep = run_expansion_sweep(
    scenario.population,
    scenario.policy,
    scenario.taxonomy,
    max_steps=6,
    per_provider_utility=U,
    extra_utility_per_step=scenario.extra_utility_per_step,
    scenario_name="crm-sweep",
)
print(
    format_table(
        ["step", "P(W)", "P(Default)", "N_fut", "U_fut", "T*", "justified"],
        [
            [
                row.step,
                round(row.violation_probability, 3),
                round(row.default_probability, 3),
                row.n_future,
                row.utility_future,
                round(row.break_even_extra_utility, 3),
                "yes" if row.justified else "no",
            ]
            for row in sweep.rows
        ],
        title="Section 9 sweep",
    )
)
print()
print(f"peak utility at step {sweep.best_step().step}; "
      f"crossover into detriment at step {sweep.crossover_step()}")

cdf = default_cdf_from_sweep(sweep)
print(f"widest widening within a 10% churn budget: step "
      f"{cdf.widest_step_within(0.10)}")
print()

frontier = pareto_frontier(sweep)
print(frontier.to_text())
knee = frontier.knee()
print(
    f"(dominated steps: {list(frontier.dominated_steps) or 'none'}; "
    f"knee of the frontier at step {knee.step})"
)
print()

# --- 3. rational vs myopic house ---------------------------------------------
response = best_response(
    scenario.population,
    scenario.policy,
    scenario.taxonomy,
    max_steps=6,
    per_provider_utility=U,
    extra_utility_per_step=scenario.extra_utility_per_step,
)
print(f"full-information house: {response}")

trace = play_widening_game(
    scenario.population,
    scenario.policy,
    scenario.taxonomy,
    GreedyWidening(WideningStep.uniform(1)),
    per_provider_utility=U,
    extra_utility_per_round=scenario.extra_utility_per_step,
)
equilibrium = trace.equilibrium_round()
print(
    f"myopic greedy house:    stops after round {trace.final_round.round_index} "
    f"(equilibrium at round {equilibrium.round_index}, "
    f"utility {equilibrium.utility:g}, "
    f"{trace.total_defaults()} customers lost on the way)"
)
print(
    f"cost of myopia: {response.row.utility_future - equilibrium.utility:g} "
    f"utility"
)

"""The geometric view of privacy tuples (paper Figure 1).

Within one purpose group, a privacy tuple spans an axis-aligned **box**
from the origin to its ranks along ``{V, G, R}``: the region of exposure
the tuple authorises.  A house policy violates a preference exactly when
the policy's box is *not contained* in the preference's box — it "pokes
out" along at least one axis.  Figure 1's three panels correspond to:

a) containment (no violation),
b) escape along one axis (violation along a single dimension),
c) escape along two axes.

:func:`violation_dimensions` reports the escaping axes;
:class:`PrivacyBox` supports the two-dimensional projections the figure
draws, plus volume/overlap helpers used in analysis.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..core.dimensions import Dimension, ORDERED_DIMENSIONS
from ..core.tuples import PrivacyTuple
from ..exceptions import ValidationError


@dataclass(frozen=True, slots=True)
class PrivacyPoint:
    """A privacy tuple's coordinates along chosen ordered dimensions.

    The figure plots two dimensions ``S_i`` and ``S_j`` at a time; a point
    is the tuple's corner in that projection.
    """

    dimensions: tuple[Dimension, ...]
    coordinates: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.dimensions) != len(self.coordinates):
            raise ValidationError(
                "dimensions and coordinates must have equal length"
            )
        for dim in self.dimensions:
            if not isinstance(dim, Dimension) or not dim.is_ordered:
                raise ValidationError(
                    f"privacy points live on ordered dimensions, got {dim!r}"
                )

    @classmethod
    def of(
        cls,
        privacy_tuple: PrivacyTuple,
        dimensions: Sequence[Dimension] = ORDERED_DIMENSIONS,
    ) -> "PrivacyPoint":
        """Project *privacy_tuple* onto *dimensions*."""
        dims = tuple(dimensions)
        return cls(
            dimensions=dims,
            coordinates=tuple(privacy_tuple.rank(d) for d in dims),
        )

    def dominated_by(self, other: "PrivacyPoint") -> bool:
        """True when *other* is at least as large on every axis."""
        if self.dimensions != other.dimensions:
            raise ValidationError("points use different dimension projections")
        return all(
            mine <= theirs
            for mine, theirs in zip(self.coordinates, other.coordinates)
        )


@dataclass(frozen=True, slots=True)
class PrivacyBox:
    """The origin-anchored box a privacy tuple spans in a projection."""

    point: PrivacyPoint

    @classmethod
    def of(
        cls,
        privacy_tuple: PrivacyTuple,
        dimensions: Sequence[Dimension] = ORDERED_DIMENSIONS,
    ) -> "PrivacyBox":
        """The box spanned by *privacy_tuple* in *dimensions*."""
        return cls(PrivacyPoint.of(privacy_tuple, dimensions))

    @property
    def dimensions(self) -> tuple[Dimension, ...]:
        """The projection's axes."""
        return self.point.dimensions

    def contains(self, other: "PrivacyBox") -> bool:
        """Figure 1's containment test: is *other*'s box inside this one?

        A preference box containing the policy box means no violation in
        this projection.
        """
        return other.point.dominated_by(self.point)

    def escape_dimensions(self, container: "PrivacyBox") -> tuple[Dimension, ...]:
        """The axes along which this box pokes out of *container*."""
        if self.dimensions != container.dimensions:
            raise ValidationError("boxes use different dimension projections")
        return tuple(
            dim
            for dim, mine, theirs in zip(
                self.dimensions, self.point.coordinates, container.point.coordinates
            )
            if mine > theirs
        )

    def volume(self) -> int:
        """The box's (discrete) volume: the product of its extents.

        A rank of ``r`` spans ``r`` unit cells from the origin, so a box
        touching the origin on any axis has volume 0 — "reveals nothing"
        along that axis.
        """
        result = 1
        for coordinate in self.point.coordinates:
            result *= coordinate
        return result

    def intersection_volume(self, other: "PrivacyBox") -> int:
        """Volume of the overlap of two origin-anchored boxes."""
        if self.dimensions != other.dimensions:
            raise ValidationError("boxes use different dimension projections")
        result = 1
        for mine, theirs in zip(
            self.point.coordinates, other.point.coordinates
        ):
            result *= min(mine, theirs)
        return result


def violation_dimensions(
    preference: PrivacyTuple,
    policy: PrivacyTuple,
    dimensions: Sequence[Dimension] = ORDERED_DIMENSIONS,
) -> tuple[Dimension, ...]:
    """The axes along which *policy*'s box escapes *preference*'s box.

    Empty when the purposes differ (the tuples live in different purpose
    groups — Figure 1 requires a shared purpose) or when the policy box is
    contained (panel a).  One axis reproduces panel b; two, panel c.
    """
    if preference.purpose != policy.purpose:
        return ()
    policy_box = PrivacyBox.of(policy, dimensions)
    preference_box = PrivacyBox.of(preference, dimensions)
    return policy_box.escape_dimensions(preference_box)

"""Unit tests for the incremental population engine (``repro.perf.delta``).

The property suite (``tests/properties/test_mutation_parity.py``) holds
the bit-for-bit contract over randomized mutation sequences; these tests
pin the mechanics — tombstone masking, validation atomicity, cache and
epoch behaviour, compaction, copy-on-write thresholds, lifecycle — on
hand-built scenarios where each behaviour is observable in isolation.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core import Population
from repro.exceptions import (
    ParallelExecutionError,
    UnknownProviderError,
    ValidationError,
)
from repro.obs import observed
from repro.perf import (
    BatchViolationEngine,
    MutableBatchEngine,
    MutableCompiledPopulation,
    make_batch_engine,
)
from repro.simulation.widening import policy_delta_columns

from tests.properties.test_batch_parity import (
    _random_policy,
    _random_population,
    _random_provider,
)


def _counters(snapshot):
    return {c["name"]: c["value"] for c in snapshot["counters"]}


def _fresh_report(population, policy, *, implicit_zero=True):
    engine = BatchViolationEngine(population, implicit_zero=implicit_zero)
    return engine.evaluate(policy)


def _assert_reports_identical(actual, expected):
    assert actual.policy_name == expected.policy_name
    assert actual.provider_ids == expected.provider_ids
    assert actual.segments == expected.segments
    assert np.array_equal(actual.violations, expected.violations)
    assert np.array_equal(actual.thresholds, expected.thresholds)
    assert np.array_equal(actual.violated, expected.violated)
    assert np.array_equal(actual.defaulted, expected.defaulted)
    assert actual.violation_probability == expected.violation_probability
    assert actual.total_violations == expected.total_violations


# ---------------------------------------------------------------------------
# mutation mechanics on the compiled store
# ---------------------------------------------------------------------------


class TestMutableCompiledPopulation:
    def test_remove_is_tombstone_only(self):
        rng = random.Random(1)
        population = _random_population(rng)
        compiled = MutableCompiledPopulation(population)
        capacity = compiled.capacity
        victim = population.providers[0].provider_id
        compiled.remove([victim])
        # Capacity is unchanged: the row is masked, not deleted.
        assert compiled.capacity == capacity
        assert compiled.dead_count == 1
        assert compiled.alive_count == capacity - 1
        assert victim not in compiled.alive_ids
        assert victim in compiled.ids  # still present in the row space

    def test_remove_unknown_id_is_atomic(self):
        rng = random.Random(2)
        population = _random_population(rng)
        compiled = MutableCompiledPopulation(population)
        known = population.providers[0].provider_id
        with pytest.raises(UnknownProviderError):
            compiled.remove([known, "no-such-provider"])
        # The known id must not have been tombstoned by the failed call.
        assert compiled.dead_count == 0
        assert known in compiled.alive_ids

    def test_remove_duplicate_ids_tombstone_once(self):
        rng = random.Random(3)
        population = _random_population(rng)
        compiled = MutableCompiledPopulation(population)
        victim = population.providers[0].provider_id
        rows = compiled.remove([victim, victim])
        assert rows.shape == (1,)
        assert compiled.dead_count == 1

    def test_append_rejects_duplicate_ids(self):
        rng = random.Random(4)
        population = _random_population(rng)
        compiled = MutableCompiledPopulation(population)
        existing = population.providers[0]
        with pytest.raises(ValidationError):
            compiled.append([existing])
        fresh = _random_provider(rng, 500)
        with pytest.raises(ValidationError):
            compiled.append([fresh, fresh])
        assert compiled.capacity == len(population)

    def test_update_unknown_id_rejected(self):
        rng = random.Random(5)
        population = _random_population(rng)
        compiled = MutableCompiledPopulation(population)
        stranger = _random_provider(rng, 900)
        with pytest.raises(UnknownProviderError):
            compiled.update([stranger])

    def test_epoch_advances_on_every_mutation(self):
        rng = random.Random(6)
        population = _random_population(rng)
        compiled = MutableCompiledPopulation(population)
        epochs = [compiled.epoch]
        compiled.remove([population.providers[0].provider_id])
        epochs.append(compiled.epoch)
        compiled.append([_random_provider(rng, 600)])
        epochs.append(compiled.epoch)
        compiled.compact()
        epochs.append(compiled.epoch)
        assert epochs == sorted(set(epochs))  # strictly increasing

    def test_alive_population_preserves_order(self):
        rng = random.Random(7)
        population = _random_population(rng)
        compiled = MutableCompiledPopulation(population)
        victims = [p.provider_id for p in population.providers[1::2]]
        compiled.remove(victims)
        survivors = population.without(victims)
        assert compiled.alive_ids == survivors.ids()
        assert compiled.population.ids() == survivors.ids()

    def test_snapshot_compacts_only_when_dirty(self):
        rng = random.Random(8)
        population = _random_population(rng)
        with observed() as obs:
            compiled = MutableCompiledPopulation(population)
            first = compiled.snapshot()
            second = compiled.snapshot()
            assert first is second  # clean snapshot: no recompile
            compiled.remove([population.providers[0].provider_id])
            third = compiled.snapshot()
            counters = _counters(obs.snapshot())
        assert third is not first
        assert len(third) == len(population) - 1
        assert counters["perf.compilations"] == 2.0
        assert counters["delta.compactions"] == 1.0


# ---------------------------------------------------------------------------
# the facade: masked evaluation, caches, compaction
# ---------------------------------------------------------------------------


class TestMutableBatchEngine:
    def test_masked_report_matches_fresh_compile(self):
        rng = random.Random(10)
        population = _random_population(rng)
        policy = _random_policy(rng, name="masked")
        victims = [p.provider_id for p in population.providers[:2]]
        with make_batch_engine(population) as engine:
            engine.remove(victims)
            report = engine.evaluate(policy)
        expected = _fresh_report(population.without(victims), policy)
        _assert_reports_identical(report, expected)

    def test_masked_report_is_cached_per_epoch(self):
        rng = random.Random(11)
        population = _random_population(rng)
        policy = _random_policy(rng, name="cached")
        with observed() as obs:
            with make_batch_engine(population) as engine:
                engine.remove([population.providers[0].provider_id])
                first = engine.evaluate(policy)
                second = engine.evaluate(policy)
                assert first is second
                engine.remove([population.providers[1].provider_id])
                third = engine.evaluate(policy)
                assert third is not first
            counters = _counters(obs.snapshot())
        assert counters["delta.cache_hits"] == 1.0
        assert counters["delta.masked_evaluations"] == 2.0

    def test_removals_never_recompile_below_threshold(self):
        rng = random.Random(12)
        population = _random_population(rng)
        policy = _random_policy(rng, name="nocompile")
        n = len(population)
        victims = [p.provider_id for p in population.providers[: n // 3]]
        with observed() as obs:
            with make_batch_engine(population) as engine:
                engine.evaluate(policy)
                for victim in victims:
                    engine.remove([victim])
                    engine.evaluate(policy)
            counters = _counters(obs.snapshot())
        assert counters["perf.compilations"] == 1.0
        assert counters.get("delta.compactions", 0.0) == 0.0
        assert counters["delta.removals"] == float(len(victims))

    def test_compaction_triggers_past_threshold(self):
        rng = random.Random(13)
        population = _random_population(rng)
        n = len(population)
        victims = [p.provider_id for p in population.providers[: n // 2 + 1]]
        with observed() as obs:
            with make_batch_engine(population) as engine:
                engine.remove(victims)
                assert engine.tombstones == 0  # compaction just ran
            counters = _counters(obs.snapshot())
        assert counters["delta.compactions"] == 1.0
        assert counters["perf.compilations"] == 2.0

    def test_compact_threshold_none_disables_compaction(self):
        rng = random.Random(14)
        population = _random_population(rng)
        n = len(population)
        victims = [p.provider_id for p in population.providers[: n - 1]]
        with observed() as obs:
            engine = MutableBatchEngine(population, compact_threshold=None)
            engine.remove(victims)
            assert engine.tombstones == len(victims)
            engine.close()
            counters = _counters(obs.snapshot())
        assert counters.get("delta.compactions", 0.0) == 0.0

    def test_append_rescores_only_new_rows_serially(self):
        rng = random.Random(15)
        population = _random_population(rng)
        policy = _random_policy(rng, name="append")
        added = [_random_provider(rng, 700), _random_provider(rng, 701)]
        with observed() as obs:
            with make_batch_engine(population) as engine:
                engine.evaluate(policy)
                engine.append(added)
                report = engine.evaluate(policy)
            counters = _counters(obs.snapshot())
        expected = _fresh_report(population.extended(added), policy)
        _assert_reports_identical(report, expected)
        assert counters["perf.compilations"] == 1.0  # no recompile
        assert counters["delta.rescored"] == float(len(added))
        assert counters["delta.appends"] == float(len(added))

    def test_update_parity_and_threshold_copy_on_write(self):
        rng = random.Random(16)
        population = _random_population(rng)
        policy = _random_policy(rng, name="update")
        import dataclasses

        target = population.providers[0]
        replacement = dataclasses.replace(target, threshold=0.0)
        with make_batch_engine(population) as engine:
            before = engine.evaluate(policy)
            thresholds_before = before.thresholds.copy()
            engine.update([replacement])
            after = engine.evaluate(policy)
        # The pre-mutation report must keep the thresholds it was
        # assembled with — update() copies before patching.
        assert np.array_equal(before.thresholds, thresholds_before)
        expected = _fresh_report(population.updated([replacement]), policy)
        _assert_reports_identical(after, expected)

    def test_certify_masked_matches_fresh_engine(self):
        rng = random.Random(17)
        population = _random_population(rng)
        policy = _random_policy(rng, name="certify")
        victims = [p.provider_id for p in population.providers[:1]]
        with make_batch_engine(population) as engine:
            engine.remove(victims)
            exact = engine.certify(policy, 0.5)
            static = engine.certify(policy, 0.5, static=True)
        survivors = population.without(victims)
        expected = BatchViolationEngine(survivors).certify(policy, 0.5)
        for certificate in (exact, static):
            assert certificate.alpha == expected.alpha
            assert (
                certificate.violation_probability
                == expected.violation_probability
            )
            assert certificate.satisfied == expected.satisfied
            assert certificate.n_providers == expected.n_providers
            assert set(certificate.violated_providers) == set(
                expected.violated_providers
            )

    def test_certify_static_and_early_exit_are_exclusive(self):
        rng = random.Random(18)
        population = _random_population(rng)
        policy = _random_policy(rng, name="exclusive")
        with make_batch_engine(population) as engine:
            engine.remove([population.providers[0].provider_id])
            with pytest.raises(ValidationError):
                engine.certify(policy, 0.5, static=True, early_exit=True)

    def test_evaluate_arrays_masked_to_alive_rows(self):
        rng = random.Random(19)
        population = _random_population(rng)
        policy = _random_policy(rng, name="arrays")
        victims = [p.provider_id for p in population.providers[:2]]
        with make_batch_engine(population) as engine:
            engine.remove(victims)
            violations, counts = engine.evaluate_arrays(policy)
        survivors = population.without(victims)
        expected = _fresh_report(survivors, policy)
        assert violations.shape == (len(survivors),)
        assert np.array_equal(violations, expected.violations)

    def test_bounds_shrink_with_the_alive_count(self):
        rng = random.Random(20)
        population = _random_population(rng)
        with make_batch_engine(population) as engine:
            assert engine.bounds == ((0, len(population)),)
            engine.remove([population.providers[0].provider_id])
            assert engine.bounds == ((0, len(population) - 1),)

    def test_empty_mutations_are_noops(self):
        rng = random.Random(21)
        population = _random_population(rng)
        with make_batch_engine(population) as engine:
            epoch = engine.epoch
            engine.remove([])
            engine.append([])
            engine.update([])
            assert engine.epoch == epoch


# ---------------------------------------------------------------------------
# lifecycle: idempotent close everywhere, failed-rebuild safety
# ---------------------------------------------------------------------------


class TestLifecycle:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda population: make_batch_engine(population),
            lambda population: make_batch_engine(population, workers=2),
            lambda population: make_batch_engine(
                population, workers=2, supervised=False
            ),
            lambda population: make_batch_engine(population, mutable=False),
            lambda population: make_batch_engine(
                population, workers=2, mutable=False
            ),
            lambda population: make_batch_engine(
                population, workers=2, supervised=False, mutable=False
            ),
        ],
        ids=[
            "facade-serial",
            "facade-supervised",
            "facade-shard",
            "bare-serial",
            "bare-supervised",
            "bare-shard",
        ],
    )
    def test_close_is_idempotent(self, factory):
        rng = random.Random(30)
        population = _random_population(rng)
        engine = factory(population)
        engine.close()
        engine.close()  # the dynamics `finally` pattern: must be a no-op

    def test_guarded_close_is_idempotent(self):
        from repro.resilience.guardrail import GuardedBatchEngine

        rng = random.Random(31)
        population = _random_population(rng)
        engine = GuardedBatchEngine(population)
        engine.close()
        engine.close()

    def test_close_safe_after_failed_pool_rebuild(self, monkeypatch):
        rng = random.Random(32)
        population = _random_population(rng)
        engine = make_batch_engine(population, workers=2)
        try:

            def boom():
                raise ParallelExecutionError("scripted rebuild failure")

            monkeypatch.setattr(engine, "_build_inner", boom)
            with pytest.raises(ParallelExecutionError):
                engine.append([_random_provider(rng, 800)])
            # The backend is gone: evaluation fails loudly ...
            policy = _random_policy(rng, name="afterboom")
            with pytest.raises(ParallelExecutionError):
                engine.evaluate(policy)
        finally:
            # ... but close() — including the double-close the callers'
            # `finally` blocks perform — must not raise.
            engine.close()
            engine.close()

    def test_facade_passes_through_backend_surfaces(self):
        rng = random.Random(33)
        population = _random_population(rng)
        with make_batch_engine(population, workers=2) as engine:
            # Supervisor-only surfaces remain reachable through the facade.
            assert engine.live_workers >= 1
            assert engine.restarts == 0


# ---------------------------------------------------------------------------
# population helpers and the policy delta decomposition
# ---------------------------------------------------------------------------


class TestSatelliteHelpers:
    def test_population_extended_appends_in_order(self):
        rng = random.Random(40)
        population = _random_population(rng)
        added = [_random_provider(rng, 850)]
        extended = population.extended(added)
        assert extended.ids() == (*population.ids(), "pr850")
        with pytest.raises(ValidationError):
            population.extended([population.providers[0]])

    def test_population_updated_replaces_in_place(self):
        import dataclasses

        rng = random.Random(41)
        population = _random_population(rng)
        replacement = dataclasses.replace(
            population.providers[0], threshold=123.0
        )
        updated = population.updated([replacement])
        assert updated.ids() == population.ids()
        assert updated.providers[0].threshold == 123.0
        with pytest.raises(UnknownProviderError):
            population.updated([_random_provider(rng, 860)])

    def test_policy_delta_columns_on_widening_step(self):
        from repro.datasets import healthcare_scenario
        from repro.simulation.widening import WideningStep, widen

        scenario = healthcare_scenario(10, seed=3)
        base = scenario.policy
        widened = widen(base, WideningStep.uniform(1), scenario.taxonomy)
        assert policy_delta_columns(base, base) == ()
        changed = policy_delta_columns(base, widened)
        assert changed  # a uniform step moves at least one column
        base_columns = {
            (entry.attribute, entry.tuple.purpose) for entry in base.entries
        }
        assert set(changed) <= base_columns

"""One-shot what-if analysis of a candidate policy.

Section 10: "It is also possible to develop 'what if' scenarios that
modify a house's privacy policies with respect to data provider default."
The :class:`WhatIfAnalyzer` holds a fixed population and baseline policy
and answers, for any candidate policy: how do ``P(W)``, ``P(Default)``,
severity, the alpha-PPDB verdict, and the Section 9 utilities move?
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import check_probability, check_real
from ..core.economics import ExpansionAssessment
from ..core.engine import EngineReport
from ..core.policy import HousePolicy
from ..core.population import Population
from ..core.ppdb import PPDBCertificate
from ..perf import BatchReport, BatchViolationEngine, batch_assess_expansion


@dataclass(frozen=True, slots=True)
class WhatIfResult:
    """A candidate policy's full consequences, next to the baseline."""

    baseline: EngineReport | BatchReport
    candidate: EngineReport | BatchReport
    assessment: ExpansionAssessment
    certificate: PPDBCertificate

    @property
    def violation_probability_delta(self) -> float:
        """Candidate minus baseline ``P(W)``."""
        return (
            self.candidate.violation_probability
            - self.baseline.violation_probability
        )

    @property
    def default_probability_delta(self) -> float:
        """Candidate minus baseline ``P(Default)``."""
        return (
            self.candidate.default_probability
            - self.baseline.default_probability
        )

    @property
    def severity_delta(self) -> float:
        """Candidate minus baseline total ``Violations`` (Eq. 16)."""
        return self.candidate.total_violations - self.baseline.total_violations

    def summary(self) -> str:
        """A one-paragraph human-readable verdict."""
        direction = "justified" if self.assessment.justified else "not justified"
        ppdb = "holds" if self.certificate.satisfied else "fails"
        return (
            f"Candidate {self.candidate.policy_name!r}: "
            f"P(W) {self.baseline.violation_probability:.3f} -> "
            f"{self.candidate.violation_probability:.3f}, "
            f"P(Default) {self.baseline.default_probability:.3f} -> "
            f"{self.candidate.default_probability:.3f}, "
            f"utility {self.assessment.utility_current:g} -> "
            f"{self.assessment.utility_future:g} ({direction}); "
            f"alpha-PPDB at alpha={self.certificate.alpha:g} {ppdb}."
        )


class WhatIfAnalyzer:
    """Evaluate candidate policies against one fixed population.

    Parameters
    ----------
    population:
        The providers being protected.
    baseline_policy:
        The house's current policy (evaluated once, cached).
    per_provider_utility:
        Section 9's ``U``.
    alpha:
        Definition 3's threshold for the candidate's certificate.
    """

    def __init__(
        self,
        population: Population,
        baseline_policy: HousePolicy,
        *,
        per_provider_utility: float = 1.0,
        alpha: float = 0.1,
        implicit_zero: bool = True,
    ) -> None:
        self._population = population
        self._per_provider_utility = check_real(
            per_provider_utility, "per_provider_utility", minimum=0.0
        )
        self._alpha = check_probability(alpha, "alpha")
        self._implicit_zero = bool(implicit_zero)
        # One compiled population serves every candidate; the batch
        # engine's report cache means asking about the same candidate
        # twice (or needing both the report and the certificate, as
        # ``assess`` does) evaluates the model once.
        self._engine = BatchViolationEngine(
            population, implicit_zero=implicit_zero
        )
        self._baseline_report = self._engine.evaluate(baseline_policy)

    @property
    def baseline_report(self) -> BatchReport:
        """The cached baseline evaluation."""
        return self._baseline_report

    def assess(
        self, candidate: HousePolicy, extra_utility: float
    ) -> WhatIfResult:
        """Evaluate *candidate* end-to-end.

        *extra_utility* is Section 9's ``T`` — the additional per-provider
        utility the candidate would unlock.
        """
        candidate_report = self._engine.evaluate(candidate)
        assessment = batch_assess_expansion(
            candidate_report,
            self._per_provider_utility,
            extra_utility,
        )
        certificate = self._engine.certify(candidate, self._alpha)
        return WhatIfResult(
            baseline=self._baseline_report,
            candidate=candidate_report,
            assessment=assessment,
            certificate=certificate,
        )

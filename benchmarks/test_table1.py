"""E1 — Table 1 (Section 8): Alice, Ted, Bob, exactly.

Regenerates every number of the paper's worked example — the per-provider
conflicts (Eq. 20), defaults (Eqs. 21-23), and ``P(Default) = 1/3``
(Eq. 24) — and asserts them with **zero tolerance**: this experiment is
pure arithmetic, so the reproduction must be exact.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core import ViolationEngine
from repro.datasets import PAPER_EXPECTATIONS

from conftest import emit


def _evaluate(paper_fixture):
    policy, population = paper_fixture
    return ViolationEngine(policy, population).report()


def test_table1_reproduction(benchmark, paper_fixture):
    report = benchmark(_evaluate, paper_fixture)
    expected = PAPER_EXPECTATIONS

    rows = []
    for outcome in report.outcomes:
        rows.append(
            [
                str(outcome.provider_id),
                int(outcome.violated),
                outcome.violation,
                outcome.threshold,
                int(outcome.defaulted),
            ]
        )
    emit(
        "Table 1 (Section 8): per-provider outcomes",
        format_table(
            ["provider", "w_i", "Violation_i", "v_i", "default_i"], rows
        ),
    )
    emit(
        "Section 8 aggregates",
        format_table(
            ["quantity", "paper", "measured"],
            [
                ["P(W)", "2/3", report.violation_probability],
                ["P(Default)", "1/3", report.default_probability],
                ["Violations (Eq. 16)", 140, report.total_violations],
            ],
        ),
    )

    # Exact assertions — the paper's own numbers.
    for outcome in report.outcomes:
        assert outcome.violation == expected.conflicts[outcome.provider_id]
        assert int(outcome.violated) == expected.indicators[outcome.provider_id]
        assert int(outcome.defaulted) == expected.defaults[outcome.provider_id]
    assert report.violation_probability == expected.violation_probability
    assert report.default_probability == expected.default_probability
    assert report.total_violations == expected.total_violations


def test_table1_trial_convergence(benchmark, paper_fixture):
    """The relative-frequency experiment behind Definitions 2 and 5."""
    from repro.core import estimate_probability_by_trials

    report = _evaluate(paper_fixture)
    indicators = {o.provider_id: int(o.defaulted) for o in report.outcomes}

    estimate = benchmark(
        estimate_probability_by_trials, indicators, 100_000, seed=0
    )
    emit(
        "Definition 5 trial experiment",
        format_table(
            ["trials", "tau(Default)/tau", "exact", "abs error"],
            [
                [
                    estimate.trials,
                    estimate.estimate,
                    estimate.exact,
                    estimate.absolute_error,
                ]
            ],
        ),
    )
    assert estimate.exact == pytest.approx(1 / 3)
    assert estimate.absolute_error < 0.01

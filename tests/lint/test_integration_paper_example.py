"""The linter's static verdicts agree with the dynamic ViolationEngine.

This is the ISSUE's agreement criterion: on the paper's Section 8 worked
example (the shipped ``examples/documents``), the guaranteed-violation
rule (PVL101) and the static alpha-PPDB rule (PVL110) must reach exactly
the conclusions a live :class:`ViolationEngine` reaches.
"""

from __future__ import annotations

import copy
import json
import pathlib

import pytest

from repro.core.engine import ViolationEngine
from repro.lint import LintConfig, lint_documents
from repro.policy_lang import parse_policy, parse_population, parse_taxonomy

DOCUMENTS = (
    pathlib.Path(__file__).resolve().parents[2] / "examples" / "documents"
)


def load(name):
    return json.loads((DOCUMENTS / name).read_text())


@pytest.fixture(scope="module")
def documents():
    return {
        "taxonomy": load("taxonomy.json"),
        "policy": load("policy.json"),
        "population": load("population.json"),
    }


@pytest.fixture(scope="module")
def taxonomy(documents):
    return parse_taxonomy(documents["taxonomy"])


def engine_for(taxonomy, documents, policy_doc):
    policy = parse_policy(policy_doc, taxonomy)
    population = parse_population(documents["population"], taxonomy)
    return ViolationEngine(policy, population)


class TestStaticAlphaPPDBAgreement:
    def test_witness_matches_engine_violated_ids(self, taxonomy, documents):
        report = lint_documents(
            taxonomy,
            policy=documents["policy"],
            population=documents["population"],
            config=LintConfig(alpha=0.5),
            select=["PVL110"],
        )
        assert report.codes() == ("PVL110",)
        payload = report.diagnostics[0].payload

        engine_report = engine_for(
            taxonomy, documents, documents["policy"]
        ).report()
        assert sorted(payload["violated_providers"]) == sorted(
            str(p) for p in engine_report.violated_ids()
        )
        assert payload["violation_probability"] == pytest.approx(
            engine_report.violation_probability
        )
        # And both equal the paper's Eq. 22 value.
        assert payload["violation_probability"] == pytest.approx(2 / 3)
        assert sorted(payload["violated_providers"]) == ["Bob", "Ted"]

    def test_silent_exactly_when_engine_satisfies_alpha(
        self, taxonomy, documents
    ):
        engine_report = engine_for(
            taxonomy, documents, documents["policy"]
        ).report()
        for alpha in (0.4, 0.66, 0.67, 0.9):
            report = lint_documents(
                taxonomy,
                policy=documents["policy"],
                population=documents["population"],
                config=LintConfig(alpha=alpha),
                select=["PVL110"],
            )
            statically_fails = bool(report)
            dynamically_fails = engine_report.violation_probability > alpha
            assert statically_fails == dynamically_fails


class TestGuaranteedViolationAgreement:
    @pytest.fixture()
    def widened_policy(self, documents):
        # Push the Weight rule's visibility past every provider's
        # preference (Alice's v+2 = 4 is the population maximum).
        policy = copy.deepcopy(documents["policy"])
        weight = next(
            r for r in policy["rules"] if r["attribute"] == "Weight"
        )
        weight["visibility"] = 5
        return policy

    def test_paper_policy_emits_no_guarantee(self, taxonomy, documents):
        # Alice tolerates the Section 8 policy, so no rule is guaranteed.
        report = lint_documents(
            taxonomy,
            policy=documents["policy"],
            population=documents["population"],
            select=["PVL101"],
        )
        assert report.codes() == ()

    def test_guarantee_implies_engine_pw_one(
        self, taxonomy, documents, widened_policy
    ):
        report = lint_documents(
            taxonomy,
            policy=widened_policy,
            population=documents["population"],
            select=["PVL101"],
        )
        assert report.codes() == ("PVL101",)
        diagnostic = report.diagnostics[0]
        assert diagnostic.payload["forces_violation_probability_one"] is True
        assert sorted(diagnostic.payload["violated_providers"]) == [
            "Alice",
            "Bob",
            "Ted",
        ]

        engine_report = engine_for(
            taxonomy, documents, widened_policy
        ).report()
        assert engine_report.violation_probability == 1.0

# Convenience targets for the ppviol repository.

PYTHON ?= python

.PHONY: install test bench bench-tables examples lint all

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

bench-tables:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

examples:
	@for script in examples/*.py; do \
		echo "== $$script"; \
		$(PYTHON) $$script > /dev/null || exit 1; \
	done; echo "all examples ran"

all: test bench

"""Fire/silent tests for the document-semantic rules PVL001-PVL006."""

from __future__ import annotations

from repro.lint import lint_documents
from repro.taxonomy import TaxonomyBuilder

from .conftest import rule


def codes(report):
    return [d.code for d in report.diagnostics]


def run(taxonomy, code, **documents):
    return lint_documents(taxonomy, select=[code], **documents)


class TestPVL001UnknownPurpose:
    def test_fires_on_policy_rule(self, taxonomy, clean_population):
        policy = {"name": "base", "rules": [rule(purpose="resale")]}
        report = run(taxonomy, "PVL001", policy=policy,
                     population=clean_population)
        assert codes(report) == ["PVL001"]
        diagnostic = report.diagnostics[0]
        assert diagnostic.location.describe() == "policy 'base' rule 0"
        assert diagnostic.location.field == "purpose"
        assert diagnostic.payload["purpose"] == "resale"
        assert "billing" in diagnostic.payload["known_purposes"]

    def test_fires_on_preference(self, taxonomy, clean_policy,
                                 clean_population):
        clean_population["providers"][0]["preferences"].append(
            rule(purpose="resale")
        )
        report = run(taxonomy, "PVL001", policy=clean_policy,
                     population=clean_population)
        assert codes(report) == ["PVL001"]
        assert report.diagnostics[0].location.document == "population"

    def test_silent_on_clean(self, taxonomy, clean_policy, clean_population):
        report = run(taxonomy, "PVL001", policy=clean_policy,
                     population=clean_population)
        assert codes(report) == []


class TestPVL002UnknownLevel:
    def test_fires_on_bad_retention(self, taxonomy, clean_population):
        policy = {"name": "base", "rules": [rule(retention="forever")]}
        report = run(taxonomy, "PVL002", policy=policy,
                     population=clean_population)
        assert codes(report) == ["PVL002"]
        diagnostic = report.diagnostics[0]
        assert diagnostic.location.field == "retention"
        assert diagnostic.payload["value"] == "forever"

    def test_fires_once_per_bad_field(self, taxonomy):
        policy = {
            "name": "base",
            "rules": [rule(visibility="galaxy", granularity="quark")],
        }
        report = run(taxonomy, "PVL002", policy=policy)
        assert codes(report) == ["PVL002", "PVL002"]
        assert [d.location.field for d in report.diagnostics] == [
            "visibility",
            "granularity",
        ]

    def test_silent_on_clean(self, taxonomy, clean_policy, clean_population):
        report = run(taxonomy, "PVL002", policy=clean_policy,
                     population=clean_population)
        assert codes(report) == []


class TestPVL003UndeclaredAttribute:
    def test_fires_when_preference_outside_attributes_provided(
        self, taxonomy, clean_policy, clean_population
    ):
        clean_population["providers"][1]["attributes_provided"] = ["age"]
        report = run(taxonomy, "PVL003", policy=clean_policy,
                     population=clean_population)
        assert codes(report) == ["PVL003"]
        diagnostic = report.diagnostics[0]
        assert diagnostic.location.describe() == "preferences of 'low' entry 0"
        assert diagnostic.payload["attribute"] == "weight"
        assert diagnostic.payload["attributes_provided"] == ["age"]

    def test_silent_without_explicit_attributes_provided(
        self, taxonomy, clean_policy, clean_population
    ):
        report = run(taxonomy, "PVL003", policy=clean_policy,
                     population=clean_population)
        assert codes(report) == []

    def test_silent_when_declared(self, taxonomy, clean_policy,
                                  clean_population):
        clean_population["providers"][1]["attributes_provided"] = ["weight"]
        report = run(taxonomy, "PVL003", policy=clean_policy,
                     population=clean_population)
        assert codes(report) == []


class TestPVL004DuplicatePolicyRule:
    def test_fires_on_exact_duplicate(self, taxonomy):
        policy = {"name": "base", "rules": [rule(), rule()]}
        report = run(taxonomy, "PVL004", policy=policy)
        assert codes(report) == ["PVL004"]
        diagnostic = report.diagnostics[0]
        assert diagnostic.location.index == 1
        assert diagnostic.payload["duplicate_of"] == 0

    def test_fires_on_candidate_too(self, taxonomy, clean_policy):
        candidate = {"name": "wider", "rules": [rule(), rule()]}
        report = run(taxonomy, "PVL004", policy=clean_policy,
                     candidate=candidate)
        assert codes(report) == ["PVL004"]
        assert report.diagnostics[0].location.document == "candidate"

    def test_silent_on_differing_rules(self, taxonomy):
        policy = {
            "name": "base",
            "rules": [rule(), rule(retention="long-term")],
        }
        report = run(taxonomy, "PVL004", policy=policy)
        assert codes(report) == []


class TestPVL005DuplicatePreference:
    def test_fires_on_exact_duplicate(self, taxonomy, clean_policy,
                                      clean_population):
        entry = clean_population["providers"][1]["preferences"][0]
        clean_population["providers"][1]["preferences"].append(dict(entry))
        report = run(taxonomy, "PVL005", policy=clean_policy,
                     population=clean_population)
        assert codes(report) == ["PVL005"]
        diagnostic = report.diagnostics[0]
        assert diagnostic.location.name == "low"
        assert diagnostic.payload["duplicate_of"] == 0

    def test_silent_on_clean(self, taxonomy, clean_policy, clean_population):
        report = run(taxonomy, "PVL005", policy=clean_policy,
                     population=clean_population)
        assert codes(report) == []


class TestPVL006NonMonotoneLadder:
    def _taxonomy_with_misplaced_none(self):
        return (
            TaxonomyBuilder()
            .with_purposes(["billing"])
            .with_visibility(["owner", "none", "all"])
            .with_granularity(["none", "existential", "specific"])
            .with_retention(["none", "transaction", "indefinite"])
            .build()
        )

    def test_fires_when_none_is_not_rank_zero(self):
        report = run(self._taxonomy_with_misplaced_none(), "PVL006")
        assert codes(report) == ["PVL006"]
        diagnostic = report.diagnostics[0]
        assert diagnostic.payload["dimension"] == "visibility"
        assert diagnostic.payload["rank"] == 1

    def test_silent_on_standard_taxonomy(self, taxonomy, clean_policy,
                                         clean_population):
        report = run(taxonomy, "PVL006", policy=clean_policy,
                     population=clean_population)
        assert codes(report) == []

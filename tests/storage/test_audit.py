"""Unit tests for the append-only audit log."""

from __future__ import annotations

import pytest

from repro.core import PrivacyTuple, ProviderPreferences
from repro.exceptions import AccessDeniedError
from repro.storage import (
    AccessRequest,
    EnforcementMode,
    PrivacyDatabase,
)


@pytest.fixture()
def db():
    database = PrivacyDatabase.create(":memory:")
    repo = database.repository
    repo.ensure_attribute("weight")
    repo.ensure_purpose("billing")
    repo.add_provider("alice")
    repo.put_datum("alice", "weight", 60)
    repo.add_preferences(
        ProviderPreferences(
            "alice", [("weight", PrivacyTuple("billing", 2, 2, 2))]
        )
    )
    yield database
    database.close()


def _narrow():
    return AccessRequest("weight", PrivacyTuple("billing", 1, 1, 1))


def _wide():
    return AccessRequest("weight", PrivacyTuple("billing", 4, 3, 4))


class TestEventStream:
    def test_sequence_numbers_monotone(self, db):
        gate = db.gate(mode=EnforcementMode.AUDIT)
        for _ in range(3):
            gate.request(_narrow())
        seqs = [event.seq for event in db.audit_log.events()]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == 3

    def test_event_kinds(self, db):
        granted_gate = db.gate(mode=EnforcementMode.AUDIT)
        granted_gate.request(_narrow())
        granted_gate.request(_wide())
        with pytest.raises(AccessDeniedError):
            db.gate(mode=EnforcementMode.ENFORCE).request(_wide())
        kinds = [event.event for event in db.audit_log.events()]
        assert kinds == ["access-granted", "violation-logged", "access-denied"]

    def test_is_violation_flag(self, db):
        gate = db.gate(mode=EnforcementMode.AUDIT)
        gate.request(_narrow())
        gate.request(_wide())
        flags = [event.is_violation for event in db.audit_log.events()]
        assert flags == [False, True]

    def test_filter_only_violations(self, db):
        gate = db.gate(mode=EnforcementMode.AUDIT)
        gate.request(_narrow())
        gate.request(_wide())
        events = list(db.audit_log.events(only_violations=True))
        assert len(events) == 1
        assert events[0].event == "violation-logged"

    def test_filter_by_provider(self, db):
        gate = db.gate(mode=EnforcementMode.AUDIT)
        gate.request(
            AccessRequest(
                "weight", PrivacyTuple("billing", 1, 1, 1), provider_id="alice"
            )
        )
        assert list(db.audit_log.events(provider_id="alice"))
        assert not list(db.audit_log.events(provider_id="bob"))

    def test_event_carries_request_tuple(self, db):
        db.gate(mode=EnforcementMode.AUDIT).request(_wide())
        [event] = list(db.audit_log.events())
        assert (event.visibility, event.granularity, event.retention) == (4, 3, 4)
        assert event.purpose == "billing"
        assert event.attribute == "weight"


class TestPolicyChangeEvents:
    def test_record_policy_change(self, db):
        db.audit_log.record_policy_change("widened retention by 1")
        [event] = list(db.audit_log.events())
        assert event.event == "policy-changed"
        assert event.detail == {"description": "widened retention by 1"}

    def test_policy_changes_not_counted_as_accesses(self, db):
        db.audit_log.record_policy_change("x")
        report = db.audit_log.report()
        assert report.total_events == 1
        assert report.observed_violation_rate == 0.0


class TestReport:
    def test_counts(self, db):
        gate = db.gate(mode=EnforcementMode.AUDIT)
        gate.request(_narrow())
        gate.request(_narrow())
        gate.request(_wide())
        with pytest.raises(AccessDeniedError):
            db.gate().request(_wide())
        report = db.audit_log.report()
        assert report.granted == 2
        assert report.violations_logged == 1
        assert report.denied == 1
        assert report.violating_accesses == 2
        assert report.observed_violation_rate == pytest.approx(0.5)

    def test_violated_providers_deduplicated(self, db):
        gate = db.gate(mode=EnforcementMode.AUDIT)
        gate.request(_wide())
        gate.request(_wide())
        report = db.audit_log.report()
        assert report.violated_providers == ("alice",)

    def test_empty_log(self, db):
        report = db.audit_log.report()
        assert report.total_events == 0
        assert report.observed_violation_rate == 0.0

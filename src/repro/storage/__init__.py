"""The sqlite-backed privacy-preserving database (alpha-PPDB substrate).

The paper frames its model as operating *inside* a relational database
system: every datum carries privacy metadata, house policies are stored
alongside the data, and violations are auditable.  This package builds
that substrate on stdlib :mod:`sqlite3`:

* :mod:`repro.storage.schema` — the DDL: the private data table plus the
  privacy-metadata tables (providers, policies, preferences,
  sensitivities, audit log);
* :mod:`repro.storage.database` — :class:`PrivacyDatabase`, the top-level
  handle (load/store model objects, build engines, certify);
* :mod:`repro.storage.repository` — row-level CRUD;
* :mod:`repro.storage.enforcement` — the purpose-aware access gate that
  checks each access request against stored preferences and either
  rejects (``enforce`` mode) or logs (``audit`` mode) violations;
* :mod:`repro.storage.audit` — the append-only audit log and its reports;
* :mod:`repro.storage.queries` — hardened connection handling (WAL,
  busy timeout, bounded retry on locked databases, fault interposition);
* :mod:`repro.storage.atomic` — atomic temp-file-then-rename writes for
  exported documents.
"""

from .atomic import atomic_write_bytes, atomic_write_text
from .database import PrivacyDatabase
from .enforcement import AccessDecision, AccessGate, AccessRequest, EnforcementMode
from .audit import AuditEvent, AuditReport
from .granularity import EXISTENCE_MARKER, ValueDegrader, numeric_degrader
from .queries import connect, with_locked_retry
from .schema import SCHEMA_VERSION

__all__ = [
    "PrivacyDatabase",
    "atomic_write_bytes",
    "atomic_write_text",
    "connect",
    "with_locked_retry",
    "AccessDecision",
    "AccessGate",
    "AccessRequest",
    "EnforcementMode",
    "AuditEvent",
    "AuditReport",
    "EXISTENCE_MARKER",
    "ValueDegrader",
    "numeric_degrader",
    "SCHEMA_VERSION",
]

"""Canonical level ladders for the taxonomy's ordered dimensions.

These are the ladders published with the taxonomy (Barker et al. 2009),
ordered from *least* to *most* privacy exposure:

* **Visibility** — who can see the datum while stored:
  ``none < owner < house < third-party < all``.  ``none`` (rank 0) is the
  "reveal to nobody" floor the implicit zero preference relies on.
* **Granularity** — how specific the revealed value is:
  ``none < existential < partial < specific``.  ``existential`` reveals
  only that a value exists; ``partial`` an interval or category (a weight
  *range*); ``specific`` the atomic value.
* **Retention** — how long the datum may be kept:
  ``none < transaction < short-term < long-term < indefinite``.  Deployments
  that measure retention in raw time units can use
  :class:`~repro.core.dimensions.UnboundedRetention` instead.
* **Purpose** (for the lattice extension only) — breadth of allowed use:
  ``none < single < reuse-same < reuse-selected < reuse-any < any``.

Each ``*_domain()`` factory returns a fresh :class:`OrderedDomain`, so
callers may extend or trim ladders without affecting others.
"""

from __future__ import annotations

from ..core.dimensions import Dimension, OrderedDomain
from ..core.purpose import PurposeLattice, chain

#: Visibility ladder, least to most exposed.
VISIBILITY_LEVELS: tuple[str, ...] = (
    "none",
    "owner",
    "house",
    "third-party",
    "all",
)

#: Granularity ladder, least to most exposed.
GRANULARITY_LEVELS: tuple[str, ...] = (
    "none",
    "existential",
    "partial",
    "specific",
)

#: Retention ladder, least to most exposed.
RETENTION_LEVELS: tuple[str, ...] = (
    "none",
    "transaction",
    "short-term",
    "long-term",
    "indefinite",
)

#: Purpose breadth ladder used by the ordered-purpose extension.
PURPOSE_LEVELS: tuple[str, ...] = (
    "none",
    "single",
    "reuse-same",
    "reuse-selected",
    "reuse-any",
    "any",
)


def visibility_domain() -> OrderedDomain:
    """The canonical visibility ladder as an :class:`OrderedDomain`."""
    return OrderedDomain(Dimension.VISIBILITY, VISIBILITY_LEVELS)


def granularity_domain() -> OrderedDomain:
    """The canonical granularity ladder as an :class:`OrderedDomain`."""
    return OrderedDomain(Dimension.GRANULARITY, GRANULARITY_LEVELS)


def retention_domain() -> OrderedDomain:
    """The canonical retention ladder as an :class:`OrderedDomain`."""
    return OrderedDomain(Dimension.RETENTION, RETENTION_LEVELS)


def purpose_breadth_chain() -> PurposeLattice:
    """The purpose-breadth ladder as a chain lattice (the [5] extension)."""
    return chain(PURPOSE_LEVELS)

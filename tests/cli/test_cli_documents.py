"""The shipped example documents drive the CLI end-to-end."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.cli import main

DOCUMENTS = (
    pathlib.Path(__file__).resolve().parents[2] / "examples" / "documents"
)


@pytest.fixture(scope="module")
def args():
    assert DOCUMENTS.is_dir()
    return [
        "--taxonomy",
        str(DOCUMENTS / "taxonomy.json"),
        "--policy",
        str(DOCUMENTS / "policy.json"),
        "--population",
        str(DOCUMENTS / "population.json"),
    ]


class TestShippedDocuments:
    def test_evaluate_reproduces_table1(self, args, capsys):
        assert main(["evaluate", *args, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_violations"] == 140.0
        assert payload["violation_probability"] == pytest.approx(2 / 3)

    def test_validate_clean(self, args, capsys):
        taxonomy, policy = args[1], args[3]
        code = main(
            [
                "validate",
                "--taxonomy",
                taxonomy,
                "--policy",
                policy,
                "--population",
                args[5],
            ]
        )
        assert code == 0

    def test_whatif_candidate(self, args, capsys):
        code = main(
            [
                "whatif",
                *args,
                "--candidate",
                str(DOCUMENTS / "candidate.json"),
                "--utility",
                "10",
                "--extra",
                "6",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        # The wider candidate pushes Bob past his threshold too.
        assert payload["default_probability_delta"] == pytest.approx(1 / 3)

    def test_forecast_with_shipped_history(self, args, capsys):
        code = main(
            [
                "forecast",
                "--taxonomy",
                args[1],
                "--population",
                args[5],
                "--history",
                args[3],
                str(DOCUMENTS / "candidate.json"),
                "--candidate",
                str(DOCUMENTS / "candidate.json"),
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["certain_defaults"]) == {"Ted", "Bob"}

"""The top-level package facade: exports, version, docstring example."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestPublicSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_types_exported(self):
        for name in (
            "PrivacyTuple",
            "HousePolicy",
            "ProviderPreferences",
            "Population",
            "Provider",
            "ViolationEngine",
            "Dimension",
        ):
            assert name in repro.__all__

    def test_model_functions_exported(self):
        for name in (
            "diff",
            "comp",
            "conf",
            "violation_indicator",
            "provider_violation",
            "violation_probability",
            "default_probability",
            "is_alpha_ppdb",
            "break_even_extra_utility",
        ):
            assert name in repro.__all__

    def test_docstring_example_runs(self):
        from repro import (
            HousePolicy,
            Population,
            PrivacyTuple,
            Provider,
            ProviderPreferences,
            ViolationEngine,
        )

        policy = HousePolicy([("weight", PrivacyTuple("billing", 2, 2, 2))])
        prefs = ProviderPreferences(
            "alice", [("weight", PrivacyTuple("billing", 2, 1, 2))]
        )
        engine = ViolationEngine(policy, Population([Provider(preferences=prefs)]))
        assert engine.report().violation_probability == 1.0

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.taxonomy",
            "repro.policy_lang",
            "repro.storage",
            "repro.simulation",
            "repro.analysis",
            "repro.game",
            "repro.datasets",
            "repro.estimation",
            "repro.cli",
        ],
    )
    def test_subpackages_import(self, module):
        importlib.import_module(module)

    @pytest.mark.parametrize(
        "module",
        [
            "repro.core",
            "repro.taxonomy",
            "repro.policy_lang",
            "repro.storage",
            "repro.simulation",
            "repro.analysis",
            "repro.game",
            "repro.estimation",
        ],
    )
    def test_subpackage_alls_resolve(self, module):
        package = importlib.import_module(module)
        for name in getattr(package, "__all__", []):
            assert hasattr(package, name), f"{module}.{name}"

    def test_every_public_item_documented(self):
        """Every object exported at the top level carries a docstring."""
        for name in repro.__all__:
            if name == "__version__" or name == "ORDERED_DIMENSIONS":
                continue
            obj = getattr(repro, name)
            assert getattr(obj, "__doc__", None), f"{name} lacks a docstring"

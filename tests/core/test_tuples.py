"""Unit tests for privacy tuples and entry types."""

from __future__ import annotations

import pytest

from repro.core import Dimension, PolicyEntry, PreferenceEntry, PrivacyTuple
from repro.exceptions import ValidationError


class TestPrivacyTuple:
    def test_value_per_dimension(self):
        t = PrivacyTuple("billing", 1, 2, 3)
        assert t.value(Dimension.PURPOSE) == "billing"
        assert t.value(Dimension.VISIBILITY) == 1
        assert t.value(Dimension.GRANULARITY) == 2
        assert t.value(Dimension.RETENTION) == 3

    def test_subscript_matches_value(self):
        t = PrivacyTuple("billing", 1, 2, 3)
        for dim in Dimension:
            assert t[dim] == t.value(dim)

    def test_rank_on_purpose_raises(self):
        t = PrivacyTuple("billing", 1, 2, 3)
        with pytest.raises(ValidationError):
            t.rank(Dimension.PURPOSE)

    def test_negative_rank_rejected(self):
        with pytest.raises(ValidationError):
            PrivacyTuple("billing", -1, 0, 0)

    def test_bool_rank_rejected(self):
        with pytest.raises(ValidationError):
            PrivacyTuple("billing", True, 0, 0)  # type: ignore[arg-type]

    def test_blank_purpose_rejected(self):
        with pytest.raises(ValidationError):
            PrivacyTuple("  ", 0, 0, 0)

    def test_immutability(self):
        t = PrivacyTuple("billing", 1, 2, 3)
        with pytest.raises(AttributeError):
            t.visibility = 4  # type: ignore[misc]

    def test_replace_substitutes_only_given(self):
        t = PrivacyTuple("billing", 1, 2, 3)
        r = t.replace(visibility=4)
        assert (r.purpose, r.visibility, r.granularity, r.retention) == (
            "billing",
            4,
            2,
            3,
        )

    def test_replace_purpose(self):
        t = PrivacyTuple("billing", 1, 2, 3)
        assert t.replace(purpose="research").purpose == "research"

    def test_shifted_moves_one_dimension(self):
        t = PrivacyTuple("billing", 1, 2, 3)
        assert t.shifted(Dimension.GRANULARITY, 2).granularity == 4

    def test_shifted_floors_at_zero(self):
        t = PrivacyTuple("billing", 1, 2, 3)
        assert t.shifted(Dimension.VISIBILITY, -5).visibility == 0

    def test_shifted_on_purpose_raises(self):
        t = PrivacyTuple("billing", 1, 2, 3)
        with pytest.raises(ValidationError):
            t.shifted(Dimension.PURPOSE, 1)

    def test_dominates_requires_same_purpose(self):
        a = PrivacyTuple("billing", 3, 3, 3)
        b = PrivacyTuple("research", 1, 1, 1)
        assert not a.dominates(b)

    def test_dominates_componentwise(self):
        big = PrivacyTuple("billing", 3, 3, 3)
        small = PrivacyTuple("billing", 1, 2, 3)
        assert big.dominates(small)
        assert not small.dominates(big)

    def test_dominates_is_reflexive(self):
        t = PrivacyTuple("billing", 1, 2, 3)
        assert t.dominates(t)

    def test_zero_tuple(self):
        z = PrivacyTuple.zero("marketing")
        assert (z.visibility, z.granularity, z.retention) == (0, 0, 0)
        assert z.purpose == "marketing"

    def test_everything_dominates_zero(self):
        z = PrivacyTuple.zero("p")
        t = PrivacyTuple("p", 0, 1, 5)
        assert t.dominates(z)

    def test_as_dict_round_trip(self):
        t = PrivacyTuple("billing", 1, 2, 3)
        assert PrivacyTuple(**t.as_dict()) == t

    def test_equality_and_hash(self):
        a = PrivacyTuple("billing", 1, 2, 3)
        b = PrivacyTuple("billing", 1, 2, 3)
        assert a == b
        assert hash(a) == hash(b)
        assert a != PrivacyTuple("billing", 1, 2, 4)

    def test_str_rendering(self):
        assert str(PrivacyTuple("p", 1, 2, 3)) == "<p, V=1, G=2, R=3>"


class TestPolicyEntry:
    def test_fields_and_purpose(self):
        entry = PolicyEntry("weight", PrivacyTuple("billing", 1, 2, 3))
        assert entry.attribute == "weight"
        assert entry.purpose == "billing"

    def test_blank_attribute_rejected(self):
        with pytest.raises(ValidationError):
            PolicyEntry(" ", PrivacyTuple("billing", 1, 2, 3))

    def test_non_tuple_rejected(self):
        with pytest.raises(ValidationError):
            PolicyEntry("weight", ("billing", 1, 2, 3))  # type: ignore[arg-type]


class TestPreferenceEntry:
    def test_fields(self):
        entry = PreferenceEntry("alice", "weight", PrivacyTuple("billing", 1, 2, 3))
        assert entry.provider_id == "alice"
        assert entry.attribute == "weight"
        assert entry.purpose == "billing"

    def test_none_provider_rejected(self):
        with pytest.raises(ValidationError):
            PreferenceEntry(None, "weight", PrivacyTuple("billing", 1, 2, 3))

    def test_non_tuple_rejected(self):
        with pytest.raises(ValidationError):
            PreferenceEntry("alice", "weight", "nope")  # type: ignore[arg-type]

    def test_integer_provider_ids_supported(self):
        entry = PreferenceEntry(7, "weight", PrivacyTuple("billing", 1, 2, 3))
        assert entry.provider_id == 7

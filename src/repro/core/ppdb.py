"""The alpha-PPDB (Definition 3): ``P(W) <= alpha``.

A database is an *alpha privacy-preserving database* when the probability
that a randomly selected provider's privacy is violated does not exceed a
threshold ``alpha``.  :func:`certify_alpha_ppdb` produces a structured,
deterministic certificate — the artifact Section 10 envisions a house
publishing so providers can audit compliance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from .._validation import check_probability
from .policy import HousePolicy
from .population import Population
from .probability import violation_probability
from .violation import violation_indicator


@dataclass(frozen=True, slots=True)
class PPDBCertificate:
    """The outcome of an alpha-PPDB check, with the evidence attached.

    ``violated_providers`` lists the ids with ``w_i = 1`` so an auditor can
    recompute ``violation_probability = len(violated_providers) / n_providers``
    and verify ``satisfied == (violation_probability <= alpha)``.

    ``exhaustive`` is False when the check stopped early: the counting was
    abandoned as soon as the ``alpha x N`` violation budget was exceeded,
    so ``violation_probability`` is a *lower bound* (sufficient to prove
    the check failed) and ``violated_providers`` may be incomplete.  The
    auditor identity above still holds for the partial list.
    """

    alpha: float
    violation_probability: float
    satisfied: bool
    n_providers: int
    violated_providers: tuple[Hashable, ...]
    policy_name: str
    exhaustive: bool = True

    @property
    def margin(self) -> float:
        """``alpha - P(W)``: positive slack when satisfied, negative excess otherwise."""
        return self.alpha - self.violation_probability

    def __str__(self) -> str:
        verdict = "SATISFIED" if self.satisfied else "VIOLATED"
        return (
            f"alpha-PPDB[{self.policy_name}]: P(W)={self.violation_probability:.4f} "
            f"vs alpha={self.alpha:.4f} -> {verdict} "
            f"({len(self.violated_providers)}/{self.n_providers} providers violated)"
        )


def is_alpha_ppdb(
    population: Population,
    policy: HousePolicy,
    alpha: float,
    *,
    implicit_zero: bool = True,
) -> bool:
    """Definition 3: True when ``P(W) <= alpha``."""
    alpha = check_probability(alpha, "alpha")
    return (
        violation_probability(population, policy, implicit_zero=implicit_zero)
        <= alpha
    )


def certify_alpha_ppdb(
    population: Population,
    policy: HousePolicy,
    alpha: float,
    *,
    implicit_zero: bool = True,
    early_exit: bool = False,
) -> PPDBCertificate:
    """Check Definition 3 and return the full certificate.

    The violation indicators are re-derived from each provider's
    preferences; ``w_i`` is purely geometric (Definition 1), so no
    sensitivity or default model enters the computation.

    With ``early_exit=True`` the provider walk stops as soon as more than
    ``alpha x N`` providers are violated: Definition 3 is already refuted
    at that point, and the returned certificate is marked
    ``exhaustive=False`` with ``violation_probability`` a lower bound.
    """
    alpha = check_probability(alpha, "alpha")
    n = len(population)
    if n == 0:
        # An empty database trivially violates nobody.
        return PPDBCertificate(
            alpha=alpha,
            violation_probability=0.0,
            satisfied=True,
            n_providers=0,
            violated_providers=(),
            policy_name=policy.name,
        )
    budget = alpha * n
    violated: list[Hashable] = []
    for provider in population:
        if violation_indicator(
            provider.preferences, policy, implicit_zero=implicit_zero
        ):
            violated.append(provider.provider_id)
            if early_exit and len(violated) > budget:
                return PPDBCertificate(
                    alpha=alpha,
                    violation_probability=len(violated) / n,
                    satisfied=False,
                    n_providers=n,
                    violated_providers=tuple(violated),
                    policy_name=policy.name,
                    exhaustive=False,
                )
    p_w = len(violated) / n
    return PPDBCertificate(
        alpha=alpha,
        violation_probability=p_w,
        satisfied=p_w <= alpha,
        n_providers=n,
        violated_providers=tuple(violated),
        policy_name=policy.name,
    )

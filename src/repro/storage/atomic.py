"""Atomic temp-file-then-rename writes for exported documents.

Exported artefacts — certification documents, sweep ledgers, serialized
policies — must never be observable half-written: a crash or disk-full
mid-export should leave either the previous file intact or no file at
all, never a truncated JSON body that downstream audit tooling might
parse as a (wrong) certificate.

:func:`atomic_write_bytes` writes to a temporary file in the target
directory, flushes and fsyncs it, and atomically renames it over the
destination (``os.replace``).  On any failure the temporary file is
removed and the destination is untouched.  The ``export.write`` fault
site lets chaos tests inject disk-full errors and byte corruption into
the write path.
"""

from __future__ import annotations

import os
import tempfile


def _fault_plan():
    from ..resilience.faults import active_plan  # lazy: avoids an import cycle

    return active_plan()


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write *data* to *path* atomically (temp file + rename).

    Raises whatever the underlying I/O raises; on failure *path* is
    left exactly as it was and the temporary file is cleaned up.
    """
    plan = _fault_plan()
    directory = os.path.dirname(os.path.abspath(path)) or "."
    handle, temp_path = tempfile.mkstemp(
        dir=directory, prefix=f".{os.path.basename(path)}.", suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "wb") as stream:
            if plan is not None:
                data = plan.corrupt_bytes("export.write", data)
            stream.write(data)
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def atomic_write_text(path: str, text: str, *, encoding: str = "utf-8") -> None:
    """Write *text* to *path* atomically (see :func:`atomic_write_bytes`)."""
    atomic_write_bytes(path, text.encode(encoding))

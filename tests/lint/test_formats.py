"""Tests for the text/json/sarif renderers."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import LintConfigurationError
from repro.lint import (
    FORMATS,
    LintConfig,
    LintReport,
    lint_documents,
    render,
    render_sarif,
    render_text,
)

from .conftest import rule


@pytest.fixture()
def findings_report(taxonomy, clean_population):
    policy = {
        "name": "base",
        "rules": [rule(purpose="resale"), rule(), rule()],
    }
    return lint_documents(
        taxonomy, policy=policy, population=clean_population,
        config=LintConfig(alpha=0.25),
    )


class TestRenderText:
    def test_one_line_per_diagnostic_plus_summary(self, findings_report):
        text = render_text(findings_report)
        lines = text.splitlines()
        assert len(lines) == len(findings_report) + 1
        assert "error[PVL001]" in text
        assert lines[-1].startswith(f"{len(findings_report)} finding(s): ")

    def test_clean_report_says_no_findings(self):
        assert render_text(LintReport(diagnostics=())) == "no findings"


class TestRenderJson:
    def test_round_trips_and_matches_as_dict(self, findings_report):
        payload = json.loads(render(findings_report, "json"))
        assert payload == findings_report.as_dict()
        assert payload["summary"]["total"] == len(findings_report)


class TestRenderSarif:
    def test_is_valid_sarif_shape(self, findings_report):
        log = json.loads(render_sarif(findings_report))
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert len(run["results"]) == len(findings_report)

    def test_rule_catalogue_attached(self, findings_report):
        log = json.loads(render_sarif(findings_report))
        rules = log["runs"][0]["tool"]["driver"]["rules"]
        ids = [entry["id"] for entry in rules]
        assert len(ids) >= 10
        assert ids == sorted(ids)
        assert all(entry["fullDescription"]["text"] for entry in rules)

    def test_severity_level_mapping(self, findings_report):
        log = json.loads(render_sarif(findings_report))
        levels = {
            result["ruleId"]: result["level"]
            for result in log["runs"][0]["results"]
        }
        assert levels["PVL001"] == "error"
        assert levels["PVL004"] == "warning"

    def test_logical_location_carries_field(self, findings_report):
        log = json.loads(render_sarif(findings_report))
        pvl001 = next(
            result
            for result in log["runs"][0]["results"]
            if result["ruleId"] == "PVL001"
        )
        logical = pvl001["locations"][0]["logicalLocations"][0]
        assert logical["fullyQualifiedName"] == "policy 'base' rule 0.purpose"
        assert logical["kind"] == "policy"

    def test_empty_report_renders_empty_results(self):
        log = json.loads(render_sarif(LintReport(diagnostics=())))
        assert log["runs"][0]["results"] == []


class TestRenderDispatch:
    def test_formats_constant(self):
        assert FORMATS == ("text", "json", "sarif")

    def test_unknown_format_raises(self, findings_report):
        with pytest.raises(LintConfigurationError):
            render(findings_report, "xml")

"""The violation machinery: Definition 1 and Equations 12-14.

* :func:`diff` — Eq. 12: the one-sided exceedance ``P - p`` when the policy
  value ``P`` is strictly larger than the preference value ``p``, else 0.
* :func:`comp` — Eq. 13: comparability — a preference tuple and a policy
  tuple are comparable iff they concern the same attribute *and* share the
  same purpose.
* :func:`conf` — Eq. 14: the sensitivity-weighted conflict between one
  preference tuple and one policy tuple, summed over the ordered
  dimensions ``{V, G, R}``.
* :func:`violation_indicator` — Definition 1's binary ``w_i``.
* :func:`find_violations` — the explainable version: every
  (preference, policy, dimension) exceedance as a structured
  :class:`ViolationFinding`, from which both ``w_i`` and ``Violation_i``
  can be recomputed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from .._validation import check_int
from .dimensions import Dimension, ORDERED_DIMENSIONS
from .policy import HousePolicy
from .preferences import ProviderPreferences, effective_preferences
from .sensitivity import SensitivityModel
from .tuples import PolicyEntry, PreferenceEntry, PrivacyTuple


def diff(preference_value: int, policy_value: int) -> int:
    """Equation 12: ``diff(p, P) = P - p`` if ``P > p`` else ``0``.

    Only exceedances count; a policy *stricter* than the preference
    contributes nothing (it cannot "repay" a violation elsewhere).
    """
    p = check_int(preference_value, "preference_value")
    capital_p = check_int(policy_value, "policy_value")
    if capital_p > p:
        return capital_p - p
    return 0


def comp(preference: PreferenceEntry, policy: PolicyEntry) -> int:
    """Equation 13: 1 when the tuples are comparable, else 0.

    Comparable means: same attribute and same purpose.  Tuples about
    different attributes, or about the same attribute under different
    purposes, never conflict directly (a missing purpose is handled by the
    implicit-zero completion, not by cross-purpose comparison).
    """
    if preference.attribute != policy.attribute:
        return 0
    if preference.purpose != policy.purpose:
        return 0
    return 1


def exceeded_dimensions(
    preference_tuple: PrivacyTuple, policy_tuple: PrivacyTuple
) -> tuple[Dimension, ...]:
    """The ordered dimensions along which the policy exceeds the preference.

    This is the geometric test of Figure 1: each returned dimension is an
    axis along which the policy's box pokes out of the preference's box.
    Purposes must match for any dimension to be reported (otherwise the
    tuples live in different purpose groups and are incomparable).
    """
    if preference_tuple.purpose != policy_tuple.purpose:
        return ()
    return tuple(
        dim
        for dim in ORDERED_DIMENSIONS
        if policy_tuple.rank(dim) > preference_tuple.rank(dim)
    )


def conf(
    preference: PreferenceEntry,
    policy: PolicyEntry,
    sensitivities: SensitivityModel | None = None,
) -> float:
    """Equation 14: sensitivity-weighted conflict between two tuples.

    ``conf = comp x sum_{dim in {V,G,R}} diff(p[dim], p'[dim])
    x Sigma^a x s_i^a x s_i^a[dim]``.

    With *sensitivities* omitted, every weight is 1 and the result is the
    raw geometric exceedance (the ablation baseline).
    """
    if comp(preference, policy) == 0:
        return 0.0
    model = sensitivities if sensitivities is not None else SensitivityModel.neutral()
    attribute = preference.attribute
    attribute_weight = model.attribute_weight(attribute)
    datum = model.datum(preference.provider_id, attribute)
    total = 0.0
    for dim in ORDERED_DIMENSIONS:
        exceedance = diff(preference.tuple.rank(dim), policy.tuple.rank(dim))
        if exceedance:
            total += (
                exceedance
                * attribute_weight
                * datum.value
                * datum.dimension_weight(dim)
            )
    return total


@dataclass(frozen=True, slots=True)
class ViolationFinding:
    """One dimension-level exceedance, fully attributed.

    ``amount`` is the raw rank exceedance (Eq. 12); ``weighted`` is the
    sensitivity-weighted contribution this exceedance adds to
    ``Violation_i`` (one term of Eq. 14's sum).
    """

    provider_id: Hashable
    attribute: str
    purpose: str
    dimension: Dimension
    preference_value: int
    policy_value: int
    amount: int
    weighted: float
    implicit: bool = False

    def __str__(self) -> str:
        origin = " (implicit zero preference)" if self.implicit else ""
        return (
            f"{self.provider_id}/{self.attribute}@{self.purpose}: "
            f"{self.dimension.symbol} {self.preference_value} -> "
            f"{self.policy_value} (+{self.amount}, weighted "
            f"{self.weighted:g}){origin}"
        )


def find_violations(
    preferences: ProviderPreferences,
    policy: HousePolicy,
    sensitivities: SensitivityModel | None = None,
    *,
    implicit_zero: bool = True,
) -> list[ViolationFinding]:
    """Every dimension-level exceedance of *policy* over *preferences*.

    Applies the implicit-zero completion first (Section 5), then compares
    every comparable (preference, policy) pair along ``{V, G, R}``.

    The findings are the single source of truth: ``w_i`` is
    ``bool(findings)`` and ``Violation_i`` is ``sum(f.weighted)`` — the
    higher-level functions are implemented on top of this one so the binary
    and severity views can never disagree.
    """
    model = sensitivities if sensitivities is not None else SensitivityModel.neutral()
    explicit_keys = {
        (entry.attribute, entry.purpose) for entry in preferences.entries
    }
    completed = effective_preferences(
        preferences, policy, implicit_zero=implicit_zero
    )
    findings: list[ViolationFinding] = []
    for pref in completed.entries:
        attribute_weight = model.attribute_weight(pref.attribute)
        datum = model.datum(pref.provider_id, pref.attribute)
        for pol in policy.for_attribute(pref.attribute):
            if pref.purpose != pol.purpose:
                continue
            for dim in ORDERED_DIMENSIONS:
                amount = diff(pref.tuple.rank(dim), pol.tuple.rank(dim))
                if not amount:
                    continue
                weighted = (
                    amount
                    * attribute_weight
                    * datum.value
                    * datum.dimension_weight(dim)
                )
                findings.append(
                    ViolationFinding(
                        provider_id=pref.provider_id,
                        attribute=pref.attribute,
                        purpose=pref.purpose,
                        dimension=dim,
                        preference_value=pref.tuple.rank(dim),
                        policy_value=pol.tuple.rank(dim),
                        amount=amount,
                        weighted=weighted,
                        implicit=(pref.attribute, pref.purpose)
                        not in explicit_keys,
                    )
                )
    return findings


def violation_indicator(
    preferences: ProviderPreferences,
    policy: HousePolicy,
    *,
    implicit_zero: bool = True,
) -> int:
    """Definition 1: the binary ``w_i``.

    ``w_i = 1`` iff there exist a preference tuple and a policy tuple with
    the same attribute and purpose such that the policy strictly exceeds the
    preference along at least one of ``{V, G, R}``.
    """
    completed = effective_preferences(
        preferences, policy, implicit_zero=implicit_zero
    )
    for pref in completed.entries:
        for pol in policy.for_attribute(pref.attribute):
            if pref.purpose != pol.purpose:
                continue
            if exceeded_dimensions(pref.tuple, pol.tuple):
                return 1
    return 0

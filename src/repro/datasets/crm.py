"""Customer-relationship-management scenario.

The introduction lists customer relationship management among the domains
where provider concerns recur.  A retailer collects purchase and contact
data; per Kobsa (the paper's ref [10]), purchase-related and financial
attributes are more sensitive than demographics and preferences.  The
retailer's commercial temptation — selling to third parties — makes this
the natural dataset for the Section 9 economics benchmarks, where utility
is literal revenue per customer.
"""

from __future__ import annotations

from ..core.policy import HousePolicy
from ..simulation.population import (
    PopulationSpec,
    WestinSegment,
    generate_population,
)
from ..taxonomy.builder import Taxonomy, TaxonomyBuilder
from .scenario import Scenario

#: Attribute -> social sensitivity (Kobsa-style ranking).
CRM_ATTRIBUTES: dict[str, float] = {
    "name": 1.0,
    "email": 2.0,
    "postal_address": 2.0,
    "purchase_history": 4.0,
    "payment_card": 5.0,
}

#: Purposes a retailer collects for.
CRM_PURPOSES: tuple[str, ...] = ("fulfillment", "marketing", "resale")


def crm_taxonomy() -> Taxonomy:
    """Retailer-specific ladders with commercial visibility rungs."""
    return (
        TaxonomyBuilder()
        .with_purposes(CRM_PURPOSES)
        .with_visibility(
            [
                "none",
                "owner",
                "house",
                "affiliates",
                "partners",
                "third-party",
                "public",
            ]
        )
        .with_granularity(["none", "existential", "category", "range", "specific"])
        .with_retention(
            [
                "none",
                "transaction",
                "month",
                "quarter",
                "year",
                "5-years",
                "indefinite",
            ]
        )
        .build()
    )


def crm_policy(taxonomy: Taxonomy | None = None) -> HousePolicy:
    """The retailer's baseline policy: fulfillment-only, no resale yet."""
    taxonomy = taxonomy if taxonomy is not None else crm_taxonomy()
    entries = []
    for attribute in CRM_ATTRIBUTES:
        entries.append(
            (
                attribute,
                taxonomy.tuple(
                    "fulfillment", "house", "specific", "transaction"
                ),
            )
        )
    for attribute in ("email", "purchase_history"):
        entries.append(
            (
                attribute,
                taxonomy.tuple("marketing", "house", "range", "month"),
            )
        )
    return HousePolicy(entries, name="crm-baseline")


def crm_segments() -> tuple[WestinSegment, ...]:
    """Westin segments calibrated to the retailer's severity scale."""
    return (
        WestinSegment(
            name="fundamentalist",
            fraction=0.25,
            tightness=0.7,
            value_sensitivity=(2.0, 4.0),
            dimension_sensitivity=(2.0, 5.0),
            threshold=(500.0, 1800.0),
            headroom=(0, 0),
        ),
        WestinSegment(
            name="pragmatist",
            fraction=0.57,
            tightness=0.4,
            value_sensitivity=(1.0, 3.0),
            dimension_sensitivity=(1.0, 3.0),
            threshold=(150.0, 900.0),
            headroom=(0, 2),
        ),
        WestinSegment(
            name="unconcerned",
            fraction=0.18,
            tightness=0.1,
            value_sensitivity=(0.5, 1.5),
            dimension_sensitivity=(0.5, 1.5),
            threshold=(300.0, 1500.0),
            headroom=(1, 4),
        ),
    )


def crm_resale_policy(taxonomy: Taxonomy | None = None) -> HousePolicy:
    """The tempting expansion: resale of contact and purchase data.

    Used by the what-if example and the economics benches as a *named*
    candidate rather than a mechanical widening: the house adds brand-new
    entries under the ``resale`` purpose, which exercises the
    implicit-zero-preference path for every provider who never mentioned
    resale.
    """
    taxonomy = taxonomy if taxonomy is not None else crm_taxonomy()
    base = crm_policy(taxonomy)
    extra = [
        (
            "email",
            taxonomy.tuple("resale", "third-party", "specific", "5-years"),
        ),
        (
            "postal_address",
            taxonomy.tuple("resale", "third-party", "specific", "5-years"),
        ),
        (
            "purchase_history",
            taxonomy.tuple("resale", "third-party", "range", "5-years"),
        ),
    ]
    return base.with_entries(extra, name="crm-with-resale")


def crm_scenario(n_providers: int = 500, *, seed: int = 23) -> Scenario:
    """A full retailer scenario with the standard Westin mix."""
    taxonomy = crm_taxonomy()
    policy = crm_policy(taxonomy)
    spec = PopulationSpec(
        taxonomy=taxonomy,
        attributes=CRM_ATTRIBUTES,
        n_providers=n_providers,
        segments=crm_segments(),
        seed=seed,
        id_prefix="customer-",
        anchor_policy=policy,
    )
    return Scenario(
        name="crm",
        taxonomy=taxonomy,
        policy=policy,
        population=generate_population(spec),
        per_provider_utility=5.0,
        extra_utility_per_step=1.0,
    )

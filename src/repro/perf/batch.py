"""The vectorized batch violation engine and its sweep-aware cache.

:class:`BatchViolationEngine` evaluates Definition 1, Eqs. 12-16, and
Definitions 2-5 over a :class:`~repro.perf.compiled.CompiledPopulation`
using NumPy kernels instead of the reference engine's per-provider Python
loop.  Semantics match :class:`~repro.core.engine.ViolationEngine`
exactly, including the implicit-zero completion of Section 5; the parity
suite in ``tests/properties/test_batch_parity.py`` holds the two engines
bit-for-bit equal on the paper's worked example and hundreds of
randomized scenarios.

Three layers of reuse make policy sweeps cheap:

1. **Compilation** — the population is flattened once (see
   :mod:`repro.perf.compiled`); evaluating another policy touches only
   arrays.
2. **Report caching** — policies are fingerprinted by their entry *set*
   (names are ignored: two equally-named policies with different entries
   never collide, two differently-named but identical policies share one
   evaluation).
3. **Delta evaluation** — the total severity decomposes as a sum of
   independent per-``(attribute, purpose)`` column contributions, so a
   candidate differing from the previously evaluated policy in only a few
   columns (the shape produced by single-rule widening and best-response
   search) recomputes just those columns and patches the cached totals.

Severity per provider and column is tracked as a pair
``(violation, findings)`` where ``findings`` counts dimension-level
exceedances; ``w_i`` is ``findings > 0``, which keeps the binary and
severity views consistent by construction — the same invariant the
reference engine derives from :func:`~repro.core.violation.find_violations`.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Hashable, Iterable, Mapping, Protocol, Sequence

import numpy as np

from .._validation import check_probability
from ..obs import active_observer
from ..core.default import DefaultModel
from ..core.engine import ViolationEngine
from ..core.policy import HousePolicy
from ..core.population import Population
from ..core.ppdb import PPDBCertificate
from ..core.sensitivity import SensitivityModel
from ..exceptions import UnknownProviderError, ValidationError
from .compiled import CompiledColumn, CompiledPopulation

#: A policy fingerprint: the entry set rendered as plain tuples.
PolicyFingerprint = frozenset[tuple[str, str, int, int, int]]

#: One column's policy side: the (V, G, R) rank triples of every policy
#: entry sharing the column's (attribute, purpose), in sorted order.
_ColumnEntries = tuple[tuple[int, int, int], ...]


def policy_fingerprint(policy: HousePolicy) -> PolicyFingerprint:
    """A name-independent, order-independent identity for *policy*.

    Two policies with equal fingerprints produce identical evaluations
    (``HousePolicy`` equality is the same entry-set comparison).
    Memoised on the (immutable) policy instance: sweeps and worker-path
    bookkeeping fingerprint the same policy many times per round.
    """
    cached = policy._fingerprint
    if cached is None:
        cached = frozenset(
            (
                entry.attribute,
                entry.tuple.purpose,
                entry.tuple.visibility,
                entry.tuple.granularity,
                entry.tuple.retention,
            )
            for entry in policy.entries
        )
        policy._fingerprint = cached
    return cached


def policy_columns(policy: HousePolicy) -> dict[tuple[str, str], _ColumnEntries]:
    """Group a policy's entries by ``(attribute, purpose)`` column.

    The decomposition the delta paths diff: two policies evaluate
    identically on every column whose entry set matches, so only the
    differing columns need recomputation (see
    :func:`repro.simulation.widening.policy_delta_columns`).  Memoised
    on the policy instance like :func:`policy_fingerprint`; treat the
    returned mapping as immutable.
    """
    cached = policy._columns
    if cached is None:
        grouped: dict[tuple[str, str], list[tuple[int, int, int]]] = {}
        for entry in policy.entries:
            key = (entry.attribute, entry.tuple.purpose)
            grouped.setdefault(key, []).append(
                (
                    entry.tuple.visibility,
                    entry.tuple.granularity,
                    entry.tuple.retention,
                )
            )
        cached = {key: tuple(sorted(ranks)) for key, ranks in grouped.items()}
        policy._columns = cached
    return cached


#: A delta wire payload: changed column key -> the target policy's entry
#: ranks for that column, or ``None`` when the column disappears.
ColumnDelta = dict[tuple[str, str], "_ColumnEntries | None"]


@dataclass(frozen=True)
class ColumnPlan:
    """A parent-side record of the worker-resident base evaluation.

    The worker delta protocol's bookkeeping unit: *fingerprint* names the
    last policy whose full column decomposition was fanned out to the
    shard workers, and *columns* is that decomposition
    (:func:`policy_columns`).  While an executor holds a plan, the next
    policy's ``(policy, shard)`` tasks can carry only the changed columns
    (:func:`plan_delta`) instead of the full decomposition — workers
    patch their resident base arrays via :func:`column_contribution`.

    The plan is population-independent (it describes the policy, not the
    providers), which is what lets a rebuilt worker pool be warm-started
    from the previous pool's plan after an append/update mutation.
    """

    fingerprint: PolicyFingerprint
    columns: dict[tuple[str, str], _ColumnEntries]


def column_plan(policy: HousePolicy) -> ColumnPlan:
    """The :class:`ColumnPlan` describing *policy* (memoised pieces)."""
    return ColumnPlan(
        fingerprint=policy_fingerprint(policy),
        columns=policy_columns(policy),
    )


def changed_column_keys(
    before: Mapping[tuple[str, str], _ColumnEntries],
    after: Mapping[tuple[str, str], _ColumnEntries],
) -> tuple[tuple[str, str], ...]:
    """The sorted ``(attribute, purpose)`` keys whose entries differ.

    The one column-diff everything shares: the serial engine's delta
    path, the worker protocol's ``plan_delta``, and the simulation
    layer's :func:`repro.simulation.widening.policy_delta_columns` all
    compare decompositions through this helper, so "changed" means the
    same thing at every layer.
    """
    keys = set(before) | set(after)
    return tuple(
        sorted(key for key in keys if before.get(key) != after.get(key))
    )


def plan_delta(
    plan: ColumnPlan | None,
    columns: Mapping[tuple[str, str], _ColumnEntries],
) -> ColumnDelta | None:
    """The changed-column payload from *plan* to the target *columns*.

    Returns ``None`` when a full decomposition must ship instead: there
    is no plan yet, or the delta would touch every column of the union
    (then the full task is no larger and needs no resident base).  An
    empty dict is a valid delta — the target equals the plan, and a
    worker holding the base serves it without recomputing anything.
    Keys are emitted in sorted order so wire payloads (and the order
    delta patches are applied in) are deterministic.
    """
    if plan is None:
        return None
    changed = changed_column_keys(plan.columns, columns)
    total = len(set(plan.columns) | set(columns))
    if total and len(changed) >= total:
        return None
    return {key: columns.get(key) for key in changed}


class CompiledLike(Protocol):
    """What the batch kernels need from a compiled population.

    :class:`~repro.perf.compiled.CompiledPopulation` is the canonical
    implementation; the parallel layer's shard views
    (:mod:`repro.perf.parallel`) implement the same surface over
    shared-memory arrays restricted to one provider shard.
    """

    def __len__(self) -> int: ...

    def column(self, attribute: str, purpose: str) -> CompiledColumn: ...

    @property
    def ids(self) -> tuple[Hashable, ...]: ...

    @property
    def segments(self) -> tuple[str | None, ...]: ...

    @property
    def thresholds(self) -> np.ndarray: ...

    @property
    def strict(self) -> bool: ...


def column_contribution(
    compiled: CompiledLike,
    key: tuple[str, str],
    entries: _ColumnEntries,
    *,
    implicit_zero: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """One column's ``(violation, finding-count)`` vectors (Eq. 14).

    Every policy entry in the column is compared against every matching
    explicit preference row and, when the completion is on, against the
    implicit zero tuple of the providers that supplied the attribute
    without covering the purpose.  Shared by the serial engine and the
    parallel shard workers; a column's vectors depend only on its entry
    ranks and the compiled preference rows, so a recomputed contribution
    is bit-for-bit identical to a cached one — the invariant the delta
    paths rest on (see :func:`sum_column_arrays`).
    """
    n = len(compiled)
    column = compiled.column(*key)
    violations = np.zeros(n, dtype=np.float64)
    counts = np.zeros(n, dtype=np.float64)
    for ranks in entries:
        policy_ranks = np.array(ranks, dtype=np.int64)
        if column.n_rows:
            exceed = np.maximum(policy_ranks - column.row_ranks, 0)
            weighted = (exceed * column.row_weights).sum(axis=1)
            found = (exceed > 0).sum(axis=1).astype(np.float64)
            violations += np.bincount(
                column.row_providers, weights=weighted, minlength=n
            )
            counts += np.bincount(
                column.row_providers, weights=found, minlength=n
            )
        if implicit_zero and column.n_implicit:
            # The implicit preference is <pr, 0, 0, 0>: the exceedance
            # equals the policy ranks themselves.
            weighted = (policy_ranks * column.implicit_weights).sum(axis=1)
            found = float((policy_ranks > 0).sum())
            violations[column.implicit_providers] += weighted
            counts[column.implicit_providers] += found
    return violations, counts


def sum_column_arrays(
    n: int,
    column_arrays: Mapping[tuple[str, str], tuple[np.ndarray, np.ndarray]],
) -> tuple[np.ndarray, np.ndarray]:
    """Total ``(violations, counts)`` from per-column vectors, canonically.

    Columns are accumulated in sorted key order — always, on every
    evaluation path.  Float addition is not associative, so a fixed
    summation order is what makes a delta round (reuse unchanged column
    vectors, recompute only changed ones) bit-for-bit identical to a
    full recompute: both sum bitwise-equal operands in the same order.
    That exactness is load-bearing for the worker delta protocol, where
    a respawned worker's full replay must merge indistinguishably with
    surviving workers' patched shards.
    """
    violations = np.zeros(n, dtype=np.float64)
    counts = np.zeros(n, dtype=np.float64)
    for key in sorted(column_arrays):
        column_violations, column_counts = column_arrays[key]
        violations += column_violations
        counts += column_counts
    return violations, counts


def row_contribution(
    compiled: CompiledLike,
    key: tuple[str, str],
    entries: _ColumnEntries,
    rows: np.ndarray,
    *,
    implicit_zero: bool,
) -> tuple[np.ndarray, np.ndarray]:
    """:func:`column_contribution` restricted to the given provider *rows*.

    *rows* must be a sorted ``int64`` array of distinct provider rows;
    the returned ``(violations, counts)`` vectors have shape
    ``(len(rows),)`` and position ``i`` carries exactly the value the
    full kernel would put at ``rows[i]``: the per-entry accumulation
    runs in the same order over the same selected preference rows, so
    patching a cached total with these values is bit-for-bit identical
    to a fresh full evaluation.  The incremental engine
    (:mod:`repro.perf.delta`) uses this to re-score only the providers
    an in-place mutation touched.
    """
    column = compiled.column(*key)
    k = int(rows.shape[0])
    violations = np.zeros(k, dtype=np.float64)
    counts = np.zeros(k, dtype=np.float64)
    if column.n_rows:
        keep = np.isin(column.row_providers, rows)
        sub_providers = np.searchsorted(rows, column.row_providers[keep])
        sub_ranks = column.row_ranks[keep]
        sub_weights = column.row_weights[keep]
        any_rows = bool(sub_providers.size)
    else:
        any_rows = False
    if implicit_zero and column.n_implicit:
        imp_keep = np.isin(column.implicit_providers, rows)
        imp_rows = np.searchsorted(rows, column.implicit_providers[imp_keep])
        imp_weights = column.implicit_weights[imp_keep]
        any_implicit = bool(imp_rows.size)
    else:
        any_implicit = False
    for ranks in entries:
        policy_ranks = np.array(ranks, dtype=np.int64)
        if any_rows:
            exceed = np.maximum(policy_ranks - sub_ranks, 0)
            weighted = (exceed * sub_weights).sum(axis=1)
            found = (exceed > 0).sum(axis=1).astype(np.float64)
            violations += np.bincount(sub_providers, weights=weighted, minlength=k)
            counts += np.bincount(sub_providers, weights=found, minlength=k)
        if any_implicit:
            weighted = (policy_ranks * imp_weights).sum(axis=1)
            found = float((policy_ranks > 0).sum())
            violations[imp_rows] += weighted
            counts[imp_rows] += found
    return violations, counts


def assemble_report(
    policy_name: str,
    violations: np.ndarray,
    counts: np.ndarray,
    *,
    ids: tuple[Hashable, ...],
    segments: tuple[str | None, ...],
    thresholds: np.ndarray,
    strict: bool,
) -> BatchReport:
    """A :class:`BatchReport` from raw severity/count arrays.

    The single place the aggregate arithmetic lives: the serial engine,
    the parallel shard merge, and the chunked-evaluation merge all build
    their reports here, so every execution mode derives ``P(W)``,
    ``P(Default)``, and the Eq. 16 total identically.
    """
    n = len(ids)
    violated = counts > 0
    if strict:
        defaulted = violations > thresholds
    else:
        defaulted = violations >= thresholds
    n_violated = int(violated.sum())
    n_defaulted = int(defaulted.sum())
    return BatchReport(
        policy_name=policy_name,
        n_providers=n,
        n_violated=n_violated,
        n_defaulted=n_defaulted,
        violation_probability=(n_violated / n) if n else 0.0,
        default_probability=(n_defaulted / n) if n else 0.0,
        total_violations=float(violations.sum()),
        provider_ids=ids,
        violations=violations,
        violated=violated,
        defaulted=defaulted,
        thresholds=thresholds,
        segments=segments,
    )


@dataclass(frozen=True)
class BatchReport:
    """An :class:`~repro.core.engine.EngineReport`-compatible batch result.

    The aggregate fields (``n_providers`` .. ``total_violations``) carry
    the same names and meanings as the reference report; the per-provider
    view is array-backed instead of materialising
    :class:`~repro.core.engine.ProviderOutcome` objects, which is what
    keeps sweep evaluation allocation-free.  All arrays are row-aligned
    with ``provider_ids``.
    """

    policy_name: str
    n_providers: int
    n_violated: int
    n_defaulted: int
    violation_probability: float
    default_probability: float
    total_violations: float
    provider_ids: tuple[Hashable, ...]
    violations: np.ndarray  # (N,) float64 — Violation_i (Eq. 15)
    violated: np.ndarray  # (N,) bool — w_i (Definition 1)
    defaulted: np.ndarray  # (N,) bool — default_i (Definition 4)
    thresholds: np.ndarray  # (N,) float64 — v_i
    segments: tuple[str | None, ...]

    def violated_ids(self) -> tuple[Hashable, ...]:
        """Providers with ``w_i = 1``, in population order."""
        return tuple(
            pid for pid, flag in zip(self.provider_ids, self.violated) if flag
        )

    def defaulted_ids(self) -> tuple[Hashable, ...]:
        """Providers with ``default_i = 1``, in population order."""
        return tuple(
            pid for pid, flag in zip(self.provider_ids, self.defaulted) if flag
        )

    def violation_of(self, provider_id: Hashable) -> float:
        """``Violation_i`` for one provider."""
        return float(self.violations[self._row(provider_id)])

    def is_violated(self, provider_id: Hashable) -> bool:
        """``w_i`` for one provider."""
        return bool(self.violated[self._row(provider_id)])

    def is_defaulted(self, provider_id: Hashable) -> bool:
        """``default_i`` for one provider."""
        return bool(self.defaulted[self._row(provider_id)])

    def _row(self, provider_id: Hashable) -> int:
        try:
            return self.provider_ids.index(provider_id)
        except ValueError:
            raise UnknownProviderError(provider_id) from None

    def __str__(self) -> str:
        return (
            f"BatchReport[{self.policy_name}]: N={self.n_providers}, "
            f"P(W)={self.violation_probability:.4f}, "
            f"P(Default)={self.default_probability:.4f}, "
            f"Violations={self.total_violations:g}"
        )


@dataclass(frozen=True)
class _Evaluation:
    """Cached per-policy arrays: severity and finding counts per provider.

    ``columns`` records the policy's column decomposition at evaluation
    time so :meth:`BatchViolationEngine.rescore_rows` can re-derive any
    provider's totals for this policy after an in-place population
    mutation without re-fingerprinting the policy.  ``column_arrays``
    keeps the per-column ``(violations, counts)`` vectors the totals
    were summed from — consecutive delta evaluations share the
    unchanged vectors by reference, so the marginal cost per cached
    policy is only its changed columns.  Holding them lets
    :meth:`BatchViolationEngine.apply_column_delta` rebase onto *any*
    cached evaluation, not just the most recent one, which is what
    keeps the worker delta protocol exact when a pool's untargeted
    dispatch hands a shard to a worker whose resident base is a round
    or two behind.
    """

    violations: np.ndarray  # (N,) float64
    counts: np.ndarray  # (N,) float64 (integer-valued)
    columns: dict[tuple[str, str], _ColumnEntries] | None = None
    column_arrays: (
        dict[tuple[str, str], tuple[np.ndarray, np.ndarray]] | None
    ) = None


class BatchViolationEngine:
    """Vectorized multi-policy evaluation over one compiled population.

    Parameters
    ----------
    population:
        A :class:`~repro.core.population.Population` (compiled on the
        spot), an existing :class:`CompiledPopulation` to share the
        compilation across engines, or any other :class:`CompiledLike`
        view (the parallel layer evaluates shard views this way).
    sensitivities, default_model:
        Optional overrides, honoured exactly like the reference engine's.
        Only valid when *population* is not already compiled (a compiled
        population has its models baked into the weight tensors).
    implicit_zero:
        Whether Section 5's implicit-zero completion applies
        (default True, as in the paper).
    max_cached_reports:
        Upper bound on memoised per-policy evaluations; the oldest entry
        is evicted first.  Each cached evaluation holds two ``float64[N]``
        arrays.
    """

    __slots__ = (
        "_compiled",
        "_implicit_zero",
        "_max_cached",
        "_cache",
        "_base_fingerprint",
        "_base_columns",
        "_base_column_arrays",
        "_interval_cache",
    )

    def __init__(
        self,
        population: Population | CompiledLike,
        *,
        sensitivities: SensitivityModel | None = None,
        default_model: DefaultModel | None = None,
        implicit_zero: bool = True,
        max_cached_reports: int = 128,
    ) -> None:
        if isinstance(population, Population):
            self._compiled = CompiledPopulation(
                population,
                sensitivities=sensitivities,
                default_model=default_model,
            )
        elif all(
            hasattr(population, attr)
            for attr in ("column", "ids", "thresholds", "strict")
        ):
            if sensitivities is not None or default_model is not None:
                raise ValidationError(
                    "model overrides must be given when compiling, not when "
                    "wrapping an already-compiled population"
                )
            self._compiled = population
        else:
            raise ValidationError(
                f"population must be a Population, got {type(population).__name__}"
            )
        self._implicit_zero = bool(implicit_zero)
        if max_cached_reports < 1:
            raise ValidationError("max_cached_reports must be >= 1")
        self._max_cached = int(max_cached_reports)
        self._cache: dict[PolicyFingerprint, _Evaluation] = {}
        # Delta-evaluation base: the most recent fully decomposed policy.
        self._base_fingerprint: PolicyFingerprint | None = None
        self._base_columns: dict[tuple[str, str], _ColumnEntries] = {}
        self._base_column_arrays: dict[
            tuple[str, str], tuple[np.ndarray, np.ndarray]
        ] = {}
        # Static severity intervals per policy fingerprint (lint layer).
        self._interval_cache: dict[PolicyFingerprint, object] = {}

    # ------------------------------------------------------------------
    # public surface
    # ------------------------------------------------------------------

    @property
    def compiled(self) -> CompiledLike:
        """The compiled population (or view) this engine evaluates against."""
        return self._compiled

    @property
    def population(self) -> Population:
        """The underlying population (full compilations only)."""
        return self._compiled.population

    @property
    def implicit_zero(self) -> bool:
        """Whether the implicit-zero completion is applied."""
        return self._implicit_zero

    @property
    def cached_policies(self) -> int:
        """Number of memoised per-policy evaluations."""
        return len(self._cache)

    def evaluate(self, policy: HousePolicy) -> BatchReport:
        """The full :class:`BatchReport` for *policy* (cached by content)."""
        if not isinstance(policy, HousePolicy):
            raise ValidationError(
                f"policy must be a HousePolicy, got {type(policy).__name__}"
            )
        evaluation = self._evaluate(policy)
        return self._to_report(policy.name, evaluation)

    # ``report`` mirrors ViolationEngine.report()'s name for callers that
    # hold a policy-bound pair (engine, policy).
    def report(self, policy: HousePolicy) -> BatchReport:
        """Alias of :meth:`evaluate`."""
        return self.evaluate(policy)

    def evaluate_arrays(self, policy: HousePolicy) -> tuple[np.ndarray, np.ndarray]:
        """Raw per-provider ``(violations, counts)`` arrays for *policy*.

        The parallel layer's shard workers call this instead of
        :meth:`evaluate`: the parent merges shard arrays by concatenation
        and assembles one report, so no per-shard :class:`BatchReport`
        objects cross the process boundary.  Served from the same cache
        and delta paths as :meth:`evaluate` — the returned arrays may be
        cached state and must not be mutated.
        """
        if not isinstance(policy, HousePolicy):
            raise ValidationError(
                f"policy must be a HousePolicy, got {type(policy).__name__}"
            )
        evaluation = self._evaluate(policy)
        return evaluation.violations, evaluation.counts

    def evaluate_decomposed(
        self,
        fingerprint: PolicyFingerprint,
        columns: Mapping[tuple[str, str], _ColumnEntries],
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Evaluate from an explicit ``(fingerprint, columns)`` decomposition.

        The worker delta protocol's full-task entry point: the parent
        ships the decomposition instead of a pickled policy, and this
        engine serves it through the same cache and delta paths as
        :meth:`evaluate` — including its own resident base, so a shard
        engine that already evaluated a neighbouring policy still pays
        only the changed columns.  Returns ``(violations, counts,
        rescored)`` where *rescored* counts the columns this call
        actually recomputed or patched out (``0`` on a cache hit).  The
        arrays are cached state and must not be mutated.
        """
        cached = self._cache.get(fingerprint)
        if cached is not None:
            return cached.violations, cached.counts, 0
        rescored = len(columns)
        if self._base_fingerprint is not None:
            changed = self._changed_columns(columns)
            if len(changed) < len(set(self._base_columns) | set(columns)):
                evaluation = self._evaluate_delta(columns, changed)
                rescored = len(changed)
            else:
                evaluation = self._evaluate_full(columns)
        else:
            evaluation = self._evaluate_full(columns)
        self._base_fingerprint = fingerprint
        self._remember(fingerprint, evaluation)
        return evaluation.violations, evaluation.counts, rescored

    def apply_column_delta(
        self,
        base_fingerprint: PolicyFingerprint,
        fingerprint: PolicyFingerprint,
        changed: Mapping[tuple[str, str], _ColumnEntries | None],
    ) -> tuple[np.ndarray, np.ndarray, int] | None:
        """Patch this engine's resident base with explicit column changes.

        The worker delta protocol's delta-task entry point: *changed*
        maps each differing column to the target policy's entries for it
        (``None`` when the column disappears).  Returns ``(violations,
        counts, rescored)`` bit-for-bit identical to a full evaluation
        of the target (see :func:`sum_column_arrays`), or ``None`` when
        this engine's resident base is not *base_fingerprint* — the
        caller must then fall back to a full decomposition (the
        protocol's base replay).  A cached target fingerprint is served
        directly with ``rescored == 0``.
        """
        cached = self._cache.get(fingerprint)
        if cached is not None:
            return cached.violations, cached.counts, 0
        if self._base_fingerprint != base_fingerprint:
            # Rebase onto any cached evaluation of the requested base:
            # under a pool's untargeted dispatch this engine may have
            # last seen a round-older policy, but the requested base is
            # often still memoised (column vectors included) — patching
            # from it is exact, so no replay round-trip is needed.
            base = self._cache.get(base_fingerprint)
            if base is None or base.columns is None or base.column_arrays is None:
                return None
            self._base_fingerprint = base_fingerprint
            self._base_columns = base.columns
            self._base_column_arrays = base.column_arrays
            obs = active_observer()
            if obs is not None:
                obs.inc("engine.batch.rebases")
        columns = dict(self._base_columns)
        for key, entries in changed.items():
            if entries:
                columns[key] = entries
            else:
                columns.pop(key, None)
        evaluation = self._evaluate_delta(columns, tuple(changed))
        self._base_fingerprint = fingerprint
        self._remember(fingerprint, evaluation)
        return evaluation.violations, evaluation.counts, len(changed)

    def close(self) -> None:
        """Release resources.  A no-op for the in-process engine.

        Exists so callers can treat this engine and the parallel
        :class:`~repro.perf.parallel.ShardExecutor` uniformly (both
        support the context-manager protocol).
        """

    def __enter__(self) -> "BatchViolationEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def evaluate_policies(
        self, policies: Iterable[HousePolicy]
    ) -> list[BatchReport]:
        """Evaluate a policy sweep, reusing work across candidates.

        Candidates are evaluated in order; each one is served from the
        report cache when its fingerprint was already seen, from the delta
        path when it shares most columns with the previous candidate, and
        from a full (still vectorized) pass otherwise.
        """
        return [self.evaluate(policy) for policy in policies]

    def rescore_rows(self, rows: Iterable[int]) -> tuple[int, int]:
        """Re-score the given provider *rows* across every cached evaluation.

        The incremental engine (:mod:`repro.perf.delta`) calls this after
        an in-place population mutation: the compiled stores already
        describe the new provider state, so each memoised evaluation's
        totals for the affected rows are recomputed from the *current*
        columns (:func:`row_contribution`) while every other provider's
        totals are reused untouched.  Rows at or past the old array
        length (appended providers) grow the cached arrays with zeros
        before patching.  Per-column restricted contributions are
        memoised by ``(column key, entry ranks)`` across all cached
        evaluations, so overlapping policies (a widening path) pay each
        column's gather once per mutation, not once per policy.

        Cached arrays are **replaced, never mutated** — previously
        returned :class:`BatchReport`\\ s alias them and keep their
        pre-mutation values.  The static-interval cache is cleared: those
        intervals were derived from the pre-mutation population.

        Returns ``(rescored, reused)``: the number of
        ``(provider, policy)`` pairs recomputed and carried over.
        """
        row_array = np.array(sorted({int(row) for row in rows}), dtype=np.int64)
        self._interval_cache.clear()
        if row_array.size == 0 or not self._cache:
            return 0, 0
        n = len(self._compiled)
        if int(row_array[0]) < 0 or int(row_array[-1]) >= n:
            raise ValidationError(
                f"rescore rows must lie in [0, {n}), got "
                f"[{int(row_array[0])}, {int(row_array[-1])}]"
            )
        memo: dict[
            tuple[tuple[str, str], _ColumnEntries],
            tuple[np.ndarray, np.ndarray],
        ] = {}

        def restricted(
            key: tuple[str, str], entries: _ColumnEntries
        ) -> tuple[np.ndarray, np.ndarray]:
            token = (key, entries)
            contribution = memo.get(token)
            if contribution is None:
                contribution = row_contribution(
                    self._compiled,
                    key,
                    entries,
                    row_array,
                    implicit_zero=self._implicit_zero,
                )
                memo[token] = contribution
            return contribution

        def regrown(array: np.ndarray) -> np.ndarray:
            patched = np.zeros(n, dtype=np.float64)
            patched[: array.shape[0]] = array
            return patched

        patched_pairs: dict[
            int,
            tuple[
                tuple[np.ndarray, np.ndarray],
                tuple[np.ndarray, np.ndarray],
            ],
        ] = {}

        def patch_pair(
            key: tuple[str, str],
            entries: _ColumnEntries,
            pair: tuple[np.ndarray, np.ndarray],
        ) -> tuple[np.ndarray, np.ndarray]:
            # Identity-memoised so column vectors shared between cached
            # evaluations stay shared after the patch (the memo value
            # pins the old pair, so its id cannot be recycled mid-pass).
            token = id(pair)
            got = patched_pairs.get(token)
            if got is None:
                contribution = restricted(key, entries)
                violations = regrown(pair[0])
                counts = regrown(pair[1])
                violations[row_array] = contribution[0]
                counts[row_array] = contribution[1]
                got = (pair, (violations, counts))
                patched_pairs[token] = got
            return got[1]

        rescored = 0
        for fingerprint, evaluation in list(self._cache.items()):
            if evaluation.columns is None:
                # An evaluation without its decomposition cannot be
                # patched; drop it and let the next lookup recompute.
                del self._cache[fingerprint]
                if fingerprint == self._base_fingerprint:
                    self._base_fingerprint = None
                    self._base_columns = {}
                    self._base_column_arrays = {}
                continue
            violations = regrown(evaluation.violations)
            counts = regrown(evaluation.counts)
            patch_violations = np.zeros(row_array.shape[0], dtype=np.float64)
            patch_counts = np.zeros(row_array.shape[0], dtype=np.float64)
            # Same sorted order as sum_column_arrays, so the patched rows
            # equal what a fresh full evaluation would put there.
            for key in sorted(evaluation.columns):
                contribution = restricted(key, evaluation.columns[key])
                patch_violations += contribution[0]
                patch_counts += contribution[1]
            violations[row_array] = patch_violations
            counts[row_array] = patch_counts
            column_arrays = evaluation.column_arrays
            if column_arrays is not None:
                column_arrays = {
                    key: patch_pair(key, evaluation.columns[key], pair)
                    for key, pair in column_arrays.items()
                }
            self._cache[fingerprint] = _Evaluation(
                violations=violations,
                counts=counts,
                columns=evaluation.columns,
                column_arrays=column_arrays,
            )
            rescored += int(row_array.size)
        self._base_column_arrays = {
            key: patch_pair(key, self._base_columns[key], pair)
            for key, pair in self._base_column_arrays.items()
        }
        reused = (n - int(row_array.size)) * len(self._cache)
        return rescored, reused

    def static_intervals(self, policy: HousePolicy):
        """The lint layer's severity intervals for *policy* (cached).

        Runs :func:`repro.lint.intervals.interval_analysis` over this
        engine's population with the engine's own sensitivity/default
        models and implicit-zero setting, in ``"provider"`` weight-bounds
        mode — the intervals are then point-exact per provider, which is
        what lets :meth:`certify` answer statically with a certificate
        identical to the evaluated one.  Cached per policy fingerprint.
        """
        from ..lint.intervals import interval_analysis

        if not isinstance(policy, HousePolicy):
            raise ValidationError(
                f"policy must be a HousePolicy, got {type(policy).__name__}"
            )
        fingerprint = policy_fingerprint(policy)
        cached = self._interval_cache.get(fingerprint)
        if cached is not None:
            return cached
        intervals = interval_analysis(
            policy,
            self._compiled.population,
            sensitivities=self._compiled.sensitivities,
            default_model=self._compiled.default_model,
            implicit_zero=self._implicit_zero,
            weight_bounds="provider",
        )
        self._interval_cache[fingerprint] = intervals
        return intervals

    def certify(
        self,
        policy: HousePolicy,
        alpha: float,
        *,
        early_exit: bool = False,
        static: bool = False,
    ) -> PPDBCertificate:
        """Definition 3's alpha-PPDB certificate under *policy*.

        With ``early_exit=True`` and an uncached policy, evaluation stops
        as soon as the violated-provider count exceeds the budget
        ``alpha x N`` — the certificate is then marked non-exhaustive and
        its ``violation_probability`` is a lower bound (sufficient to
        prove the check failed).

        With ``static=True`` the verdict is derived from the lint
        layer's severity intervals (:meth:`static_intervals`) without
        evaluating the population at all: the static finding counts
        decide each provider's ``w_i`` exactly (Definition 1 is
        weight-independent), so the certificate is field-for-field
        identical to the evaluated one — a property the parity suite
        holds over randomized populations.  ``static`` and
        ``early_exit`` are mutually exclusive.
        """
        if static:
            if early_exit:
                raise ValidationError(
                    "static certification never evaluates, so early_exit "
                    "does not apply; pass one or the other"
                )
            alpha = check_probability(alpha, "alpha")
            if len(self._compiled) == 0:
                return PPDBCertificate(
                    alpha=alpha,
                    violation_probability=0.0,
                    satisfied=True,
                    n_providers=0,
                    violated_providers=(),
                    policy_name=policy.name,
                )
            certificate = self.static_intervals(policy).certificate(alpha)
            obs = active_observer()
            if obs is not None:
                obs.inc("engine.batch.static_certifications")
                obs.inc(
                    "engine.batch.static_skipped_providers",
                    len(self._compiled),
                )
            return certificate
        alpha = check_probability(alpha, "alpha")
        n = len(self._compiled)
        if n == 0:
            return PPDBCertificate(
                alpha=alpha,
                violation_probability=0.0,
                satisfied=True,
                n_providers=0,
                violated_providers=(),
                policy_name=policy.name,
            )
        fingerprint = policy_fingerprint(policy)
        if early_exit and fingerprint not in self._cache:
            certificate = self._certify_early_exit(policy, alpha)
            if certificate is not None:
                return certificate
        evaluation = self._evaluate(policy)
        violated = tuple(
            pid
            for pid, count in zip(self._compiled.ids, evaluation.counts)
            if count > 0
        )
        p_w = len(violated) / n
        return PPDBCertificate(
            alpha=alpha,
            violation_probability=p_w,
            satisfied=p_w <= alpha,
            n_providers=n,
            violated_providers=violated,
            policy_name=policy.name,
        )

    def reference_engine(self, policy: HousePolicy) -> ViolationEngine:
        """The reference oracle for *policy*: same inputs, Python loop.

        Used by the parity suite and available for spot-checking a batch
        result against the slow-but-simple implementation.
        """
        return ViolationEngine(
            policy,
            self._compiled.population,
            sensitivities=self._compiled.sensitivities,
            default_model=self._compiled.default_model,
            implicit_zero=self._implicit_zero,
        )

    # ------------------------------------------------------------------
    # evaluation core
    # ------------------------------------------------------------------

    def _evaluate(self, policy: HousePolicy) -> _Evaluation:
        fingerprint = policy_fingerprint(policy)
        cached = self._cache.get(fingerprint)
        obs = active_observer()
        if cached is not None:
            if obs is not None:
                obs.inc("engine.batch.cache_hits")
            return cached
        start = perf_counter() if obs is not None else 0.0
        columns = policy_columns(policy)
        if self._base_fingerprint is not None:
            changed = self._changed_columns(columns)
            # Patch the cached totals when the candidate shares at least
            # one untouched column with the base; otherwise recompute.
            if len(changed) < len(set(self._base_columns) | set(columns)):
                evaluation = self._evaluate_delta(columns, changed)
                self._base_fingerprint = fingerprint
                self._remember(fingerprint, evaluation)
                if obs is not None:
                    obs.inc("engine.batch.delta_evaluations")
                    obs.observe(
                        "engine.batch.evaluate_seconds",
                        perf_counter() - start,
                        path="delta",
                    )
                return evaluation
        evaluation = self._evaluate_full(columns)
        self._base_fingerprint = fingerprint
        self._remember(fingerprint, evaluation)
        if obs is not None:
            obs.inc("engine.batch.full_evaluations")
            obs.observe(
                "engine.batch.evaluate_seconds",
                perf_counter() - start,
                path="full",
            )
        return evaluation

    def _changed_columns(
        self, columns: Mapping[tuple[str, str], _ColumnEntries]
    ) -> list[tuple[str, str]]:
        # Sorted for determinism only (stable counters, wire payloads,
        # and hash-randomization-proof traces); since totals are re-summed
        # canonically by sum_column_arrays, the order no longer affects
        # the numbers.
        return list(changed_column_keys(self._base_columns, columns))

    def _evaluate_full(
        self, columns: Mapping[tuple[str, str], _ColumnEntries]
    ) -> _Evaluation:
        column_arrays = {
            key: self._column_contribution(key, entries)
            for key, entries in columns.items()
        }
        violations, counts = sum_column_arrays(len(self._compiled), column_arrays)
        column_map = dict(columns)
        self._base_columns = column_map
        self._base_column_arrays = column_arrays
        return _Evaluation(
            violations=violations,
            counts=counts,
            columns=column_map,
            column_arrays=column_arrays,
        )

    def _evaluate_delta(
        self,
        columns: Mapping[tuple[str, str], _ColumnEntries],
        changed: Sequence[tuple[str, str]],
    ) -> _Evaluation:
        # Recompute only the changed columns, then re-sum every column
        # vector canonically (sum_column_arrays).  The re-sum costs
        # O(columns x rows) cheap adds but buys exactness: the result is
        # bit-for-bit what _evaluate_full would produce for the same
        # target, so delta, full, and cache-served paths are freely
        # interchangeable — including across process boundaries in the
        # worker delta protocol.  The base's column vectors live in
        # _base_column_arrays, so cache eviction of the base report does
        # not invalidate the delta path.
        new_columns = dict(self._base_columns)
        new_arrays = dict(self._base_column_arrays)
        for key in changed:
            new_arrays.pop(key, None)
            new_columns.pop(key, None)
            entries = columns.get(key)
            if entries:
                new_arrays[key] = self._column_contribution(key, entries)
                new_columns[key] = entries
        violations, counts = sum_column_arrays(len(self._compiled), new_arrays)
        self._base_columns = new_columns
        self._base_column_arrays = new_arrays
        return _Evaluation(
            violations=violations,
            counts=counts,
            columns=new_columns,
            column_arrays=new_arrays,
        )

    def _column_contribution(
        self, key: tuple[str, str], entries: _ColumnEntries
    ) -> tuple[np.ndarray, np.ndarray]:
        return column_contribution(
            self._compiled, key, entries, implicit_zero=self._implicit_zero
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _remember(
        self, fingerprint: PolicyFingerprint, evaluation: _Evaluation
    ) -> None:
        if fingerprint not in self._cache and len(self._cache) >= self._max_cached:
            # Evict the oldest memoised evaluation.  If it happens to be
            # the delta base, _evaluate_delta notices the missing cache
            # entry and falls back to a full pass — no state to clean.
            del self._cache[next(iter(self._cache))]
        self._cache[fingerprint] = evaluation

    def _to_report(self, policy_name: str, evaluation: _Evaluation) -> BatchReport:
        compiled = self._compiled
        return assemble_report(
            policy_name,
            evaluation.violations,
            evaluation.counts,
            ids=compiled.ids,
            segments=compiled.segments,
            thresholds=compiled.thresholds,
            strict=compiled.strict,
        )

    def _certify_early_exit(
        self, policy: HousePolicy, alpha: float
    ) -> PPDBCertificate | None:
        """Stop counting once the ``alpha x N`` violation budget is blown.

        Walks the policy's columns, accumulating per-provider finding
        counts; as soon as the number of violated providers exceeds the
        budget, Definition 3 is already refuted and a non-exhaustive
        certificate is returned.  Returns ``None`` when the walk finishes
        within budget — the caller then produces the exact certificate
        (and the full evaluation lands in the cache, so nothing is wasted).
        """
        compiled = self._compiled
        n = len(compiled)
        budget = alpha * n
        counts = np.zeros(n, dtype=np.float64)
        for key, entries in policy_columns(policy).items():
            contribution = self._column_contribution(key, entries)
            counts += contribution[1]
            n_violated = int((counts > 0).sum())
            if n_violated > budget:
                obs = active_observer()
                if obs is not None:
                    obs.inc("engine.batch.early_exits")
                violated = tuple(
                    pid
                    for pid, count in zip(compiled.ids, counts)
                    if count > 0
                )
                return PPDBCertificate(
                    alpha=alpha,
                    violation_probability=n_violated / n,
                    satisfied=False,
                    n_providers=n,
                    violated_providers=violated,
                    policy_name=policy.name,
                    exhaustive=False,
                )
        return None

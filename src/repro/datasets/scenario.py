"""The :class:`Scenario` bundle shared by the domain datasets.

A scenario is everything an experiment needs: the taxonomy (vocabulary),
the house's current policy, the provider population, and the economic
parameters of Section 9 (per-provider utility ``U`` and the extra utility
``T`` a widening step unlocks).
"""

from __future__ import annotations

from dataclasses import dataclass

from .._validation import check_real
from ..core.policy import HousePolicy
from ..core.population import Population
from ..taxonomy.builder import Taxonomy


@dataclass(frozen=True, slots=True)
class Scenario:
    """One self-contained experimental setting."""

    name: str
    taxonomy: Taxonomy
    policy: HousePolicy
    population: Population
    per_provider_utility: float = 1.0
    extra_utility_per_step: float = 0.25

    def __post_init__(self) -> None:
        check_real(self.per_provider_utility, "per_provider_utility", minimum=0.0)
        check_real(
            self.extra_utility_per_step, "extra_utility_per_step", minimum=0.0
        )

    def __str__(self) -> str:
        return (
            f"Scenario({self.name!r}: {len(self.population)} providers, "
            f"{len(self.policy)} policy entries)"
        )

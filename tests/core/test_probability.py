"""Unit tests for P(W), P(Default), and the trial estimator (Defs. 2 & 5)."""

from __future__ import annotations

import pytest

from repro.core import (
    HousePolicy,
    Population,
    PrivacyTuple,
    Provider,
    ProviderPreferences,
    default_probability,
    estimate_probability_by_trials,
    violation_probability,
)
from repro.exceptions import ValidationError


def _provider(pid: str, rank: int, threshold: float = 10.0) -> Provider:
    prefs = ProviderPreferences(
        pid, [("weight", PrivacyTuple("billing", rank, rank, rank))]
    )
    return Provider(preferences=prefs, threshold=threshold)


@pytest.fixture()
def policy() -> HousePolicy:
    return HousePolicy([("weight", PrivacyTuple("billing", 2, 2, 2))])


class TestViolationProbability:
    def test_fraction_of_violated(self, policy):
        population = Population(
            [_provider("a", 1), _provider("b", 2), _provider("c", 3), _provider("d", 0)]
        )
        # ranks 1 and 0 are exceeded by policy rank 2 -> 2 of 4 violated
        assert violation_probability(population, policy) == 0.5

    def test_all_violated(self, policy):
        population = Population([_provider("a", 0), _provider("b", 1)])
        assert violation_probability(population, policy) == 1.0

    def test_none_violated(self, policy):
        population = Population([_provider("a", 2), _provider("b", 3)])
        assert violation_probability(population, policy) == 0.0

    def test_empty_population_raises(self, policy):
        with pytest.raises(ValidationError):
            violation_probability(Population([]), policy)

    def test_paper_value(self, paper_population, paper_policy):
        assert violation_probability(paper_population, paper_policy) == 2 / 3


class TestDefaultProbability:
    def test_paper_value(self, paper_population, paper_policy):
        assert default_probability(paper_population, paper_policy) == 1 / 3

    def test_default_probability_le_violation_probability(
        self, paper_population, paper_policy
    ):
        p_w = violation_probability(paper_population, paper_policy)
        p_d = default_probability(paper_population, paper_policy)
        assert p_d <= p_w

    def test_infinite_thresholds_mean_zero_defaults(self, policy):
        population = Population(
            [
                Provider(
                    preferences=ProviderPreferences(
                        "a", [("weight", PrivacyTuple("billing", 0, 0, 0))]
                    )
                )
            ]
        )
        assert default_probability(population, policy) == 0.0
        assert violation_probability(population, policy) == 1.0

    def test_empty_population_raises(self, policy):
        with pytest.raises(ValidationError):
            default_probability(Population([]), policy)


class TestTrialEstimator:
    def test_exact_matches_mean(self):
        estimate = estimate_probability_by_trials([1, 0, 1, 0], 100, seed=1)
        assert estimate.exact == 0.5

    def test_estimate_is_fraction_of_positives(self):
        estimate = estimate_probability_by_trials([1, 0], 1000, seed=2)
        assert estimate.estimate == estimate.positive_trials / estimate.trials

    def test_convergence_with_more_trials(self):
        indicators = [1] * 3 + [0] * 7
        coarse = estimate_probability_by_trials(indicators, 50, seed=3)
        fine = estimate_probability_by_trials(indicators, 200_000, seed=3)
        assert fine.absolute_error <= coarse.absolute_error + 1e-9
        assert fine.absolute_error < 0.01

    def test_degenerate_all_ones(self):
        estimate = estimate_probability_by_trials([1, 1, 1], 500, seed=4)
        assert estimate.estimate == 1.0
        assert estimate.exact == 1.0

    def test_mapping_input(self):
        estimate = estimate_probability_by_trials(
            {"a": 1, "b": 0}, 100, seed=5
        )
        assert estimate.exact == 0.5

    def test_deterministic_given_seed(self):
        a = estimate_probability_by_trials([1, 0, 0], 1000, seed=9)
        b = estimate_probability_by_trials([1, 0, 0], 1000, seed=9)
        assert a == b

    def test_invalid_indicator_rejected(self):
        with pytest.raises(ValidationError):
            estimate_probability_by_trials([0, 2], 10)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            estimate_probability_by_trials([], 10)

    def test_zero_trials_rejected(self):
        with pytest.raises(ValidationError):
            estimate_probability_by_trials([1], 0)

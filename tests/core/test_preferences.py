"""Unit tests for provider preferences and the implicit-zero rule."""

from __future__ import annotations

import pytest

from repro.core import (
    HousePolicy,
    PreferenceEntry,
    PrivacyTuple,
    ProviderPreferences,
    effective_preferences,
)
from repro.exceptions import ValidationError


@pytest.fixture()
def prefs() -> ProviderPreferences:
    return ProviderPreferences(
        "alice",
        [
            ("weight", PrivacyTuple("billing", 2, 2, 2)),
            ("age", PrivacyTuple("billing", 3, 3, 3)),
        ],
    )


class TestConstruction:
    def test_pairs_get_provider_id(self, prefs):
        assert all(e.provider_id == "alice" for e in prefs)

    def test_entry_with_wrong_provider_rejected(self):
        entry = PreferenceEntry("bob", "weight", PrivacyTuple("billing", 1, 1, 1))
        with pytest.raises(ValidationError):
            ProviderPreferences("alice", [entry])

    def test_none_provider_rejected(self):
        with pytest.raises(ValidationError):
            ProviderPreferences(None)

    def test_deduplication(self):
        pair = ("weight", PrivacyTuple("billing", 1, 1, 1))
        prefs = ProviderPreferences("alice", [pair, pair])
        assert len(prefs) == 1

    def test_attributes_provided_defaults_to_mentioned(self, prefs):
        assert prefs.attributes_provided == {"weight", "age"}

    def test_explicit_attributes_provided_superset_ok(self):
        prefs = ProviderPreferences(
            "alice",
            [("weight", PrivacyTuple("billing", 1, 1, 1))],
            attributes_provided=["weight", "height"],
        )
        assert prefs.attributes_provided == {"weight", "height"}

    def test_attributes_provided_must_cover_preferences(self):
        with pytest.raises(ValidationError):
            ProviderPreferences(
                "alice",
                [("weight", PrivacyTuple("billing", 1, 1, 1))],
                attributes_provided=["height"],
            )

    def test_empty_preferences_legal(self):
        prefs = ProviderPreferences("alice")
        assert len(prefs) == 0
        assert prefs.attributes_provided == frozenset()


class TestAccessors:
    def test_for_attribute(self, prefs):
        weight = prefs.for_attribute("weight")
        assert len(weight) == 1
        assert weight[0].attribute == "weight"

    def test_for_attribute_missing_empty(self, prefs):
        assert prefs.for_attribute("height") == ()

    def test_purposes_for(self, prefs):
        assert prefs.purposes_for("weight") == frozenset({"billing"})
        assert prefs.purposes_for("height") == frozenset()

    def test_attributes_sorted(self, prefs):
        assert prefs.attributes() == ("age", "weight")

    def test_with_entries_extends_provided(self, prefs):
        more = prefs.with_entries([("height", PrivacyTuple("billing", 1, 1, 1))])
        assert "height" in more.attributes_provided
        assert len(more) == 3
        assert len(prefs) == 2  # original untouched

    def test_equality(self):
        a = ProviderPreferences("x", [("w", PrivacyTuple("p", 1, 1, 1))])
        b = ProviderPreferences("x", [("w", PrivacyTuple("p", 1, 1, 1))])
        assert a == b
        assert hash(a) == hash(b)


class TestImplicitZero:
    def test_unmentioned_purpose_gets_zero_tuple(self, prefs):
        policy = HousePolicy([("weight", PrivacyTuple("marketing", 1, 1, 1))])
        completed = effective_preferences(prefs, policy)
        added = [e for e in completed if e.purpose == "marketing"]
        assert len(added) == 1
        assert added[0].tuple == PrivacyTuple.zero("marketing")
        assert added[0].attribute == "weight"

    def test_known_purpose_not_duplicated(self, prefs):
        policy = HousePolicy([("weight", PrivacyTuple("billing", 1, 1, 1))])
        completed = effective_preferences(prefs, policy)
        assert completed is prefs  # no additions needed

    def test_unprovided_attribute_not_completed(self, prefs):
        policy = HousePolicy([("height", PrivacyTuple("marketing", 1, 1, 1))])
        completed = effective_preferences(prefs, policy)
        assert completed is prefs

    def test_implicit_zero_disabled(self, prefs):
        policy = HousePolicy([("weight", PrivacyTuple("marketing", 1, 1, 1))])
        completed = effective_preferences(prefs, policy, implicit_zero=False)
        assert completed is prefs

    def test_one_zero_tuple_per_attribute_purpose_pair(self, prefs):
        policy = HousePolicy(
            [
                ("weight", PrivacyTuple("marketing", 1, 1, 1)),
                ("weight", PrivacyTuple("marketing", 2, 2, 2)),
            ]
        )
        completed = effective_preferences(prefs, policy)
        marketing = [e for e in completed if e.purpose == "marketing"]
        assert len(marketing) == 1

    def test_completion_covers_multiple_attributes(self, prefs):
        policy = HousePolicy(
            [
                ("weight", PrivacyTuple("marketing", 1, 1, 1)),
                ("age", PrivacyTuple("marketing", 1, 1, 1)),
            ]
        )
        completed = effective_preferences(prefs, policy)
        assert len(completed) == len(prefs) + 2

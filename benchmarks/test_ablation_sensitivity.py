"""Ablation — sensitivity weighting on vs off (Section 6.1's point).

With all sensitivities forced to 1, severity collapses to the raw
geometric exceedance, and the paper's Table 1 inversion disappears: Ted
(one dimension exceeded by 1) can no longer out-sever Bob (two dimensions
exceeded by 1 each).  The ablation quantifies what the weighting buys.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import SensitivityModel, ViolationEngine, provider_violation

from conftest import emit


def test_sensitivity_weighting_ablation(benchmark, paper_fixture):
    policy, population = paper_fixture

    def evaluate_both():
        weighted = {
            provider.provider_id: provider_violation(
                provider.preferences, policy, population.sensitivity_model()
            )
            for provider in population
        }
        unweighted = {
            provider.provider_id: provider_violation(
                provider.preferences, policy, SensitivityModel.neutral()
            )
            for provider in population
        }
        return weighted, unweighted

    weighted, unweighted = benchmark(evaluate_both)

    rows = [
        [str(pid), weighted[pid], unweighted[pid]]
        for pid in ("Alice", "Ted", "Bob")
    ]
    emit(
        "Ablation: Violation_i with vs without sensitivity weighting",
        format_table(["provider", "weighted (paper)", "all weights = 1"], rows),
    )

    # Paper values with weighting.
    assert weighted == {"Alice": 0.0, "Ted": 60.0, "Bob": 80.0}
    # Raw exceedance without: Ted = 1 (one dim by 1), Bob = 2 (two dims by 1).
    assert unweighted == {"Alice": 0.0, "Ted": 1.0, "Bob": 2.0}
    # The inversion: weighting lets a one-dimension violation dominate...
    assert weighted["Ted"] > unweighted["Ted"] * 10
    # ...but unweighted severity ranks Bob strictly above Ted.
    assert unweighted["Bob"] > unweighted["Ted"]
    # The binary indicator w_i is unaffected by weighting.
    engine = ViolationEngine(policy, population)
    for outcome in engine.outcomes():
        assert outcome.violated == (unweighted[outcome.provider_id] > 0)

"""Publishable alpha-PPDB certification documents.

Section 10: "if a particular default level is explicitly adopted, the
database can be demonstrably shown to be an alpha-PPDB."  The raw
:class:`~repro.core.ppdb.PPDBCertificate` carries the evidence; this
module wraps it into a self-contained document (plain dict / JSON) that a
house can publish and a provider can recheck: the claim, the measured
``P(W)``, the margin, and the per-provider indicator list.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..core.engine import ViolationEngine
from ..core.policy import HousePolicy
from ..core.ppdb import PPDBCertificate
from ..perf import BatchViolationEngine


@dataclass(frozen=True, slots=True)
class CertificationDocument:
    """An alpha-PPDB certificate plus contextual metrics, publishable as JSON."""

    certificate: PPDBCertificate
    default_probability: float
    total_violations: float

    def as_dict(self) -> dict:
        """The document as a JSON-compatible dict."""
        certificate = self.certificate
        return {
            "claim": f"alpha-PPDB(alpha={certificate.alpha})",
            "policy": certificate.policy_name,
            "satisfied": certificate.satisfied,
            "violation_probability": certificate.violation_probability,
            "margin": certificate.margin,
            "n_providers": certificate.n_providers,
            "violated_providers": [
                str(provider) for provider in certificate.violated_providers
            ],
            "default_probability": self.default_probability,
            "total_violations": self.total_violations,
        }

    def to_json(self, *, indent: int = 2) -> str:
        """The document as JSON text."""
        return json.dumps(self.as_dict(), indent=indent, sort_keys=True)

    def verify(self) -> bool:
        """Recheck the certificate's internal consistency.

        The verification a provider can run without trusting the house:
        the published ``P(W)`` must equal the violated-provider count over
        the population size, and the verdict must match the threshold.
        """
        certificate = self.certificate
        if certificate.n_providers == 0:
            return certificate.violation_probability == 0.0 and certificate.satisfied
        recomputed = (
            len(certificate.violated_providers) / certificate.n_providers
        )
        if abs(recomputed - certificate.violation_probability) > 1e-12:
            return False
        return certificate.satisfied == (
            certificate.violation_probability <= certificate.alpha
        )


def certification_document(
    engine: ViolationEngine, alpha: float
) -> CertificationDocument:
    """Produce the publishable document for one engine evaluation."""
    report = engine.report()
    return CertificationDocument(
        certificate=engine.certify(alpha),
        default_probability=report.default_probability,
        total_violations=report.total_violations,
    )


def batch_certification_document(
    engine: BatchViolationEngine,
    policy: HousePolicy,
    alpha: float,
    *,
    static: bool = False,
) -> CertificationDocument:
    """Produce the publishable document from a batch engine.

    Accepts anything with the batch evaluation surface — the serial
    :class:`~repro.perf.batch.BatchViolationEngine` or the parallel
    :class:`~repro.perf.parallel.ShardExecutor` — both cache per-policy
    reports, so certifying several candidate policies against one
    compiled population reuses each evaluation; the certificate and the
    contextual metrics come from the same cached report, keeping them
    consistent by construction (the same guarantee
    :meth:`~repro.core.engine.ViolationEngine.certify` makes).

    With ``static=True`` nothing is evaluated: the certificate comes
    from the engine's static path (``certify(..., static=True)``) and
    the contextual metrics from the same provider-exact severity
    intervals (:mod:`repro.lint.intervals`), which determine
    ``P(Default)`` and Eq. 16's total exactly.  The verdict is identical
    to the evaluated document's; the floating-point metrics are computed
    by the static summation order.
    """
    if static:
        from ..lint.intervals import interval_analysis

        intervals = interval_analysis(
            policy,
            engine.compiled.population,
            sensitivities=engine.compiled.sensitivities,
            default_model=engine.compiled.default_model,
            implicit_zero=engine.implicit_zero,
            weight_bounds="provider",
        )
        return CertificationDocument(
            certificate=engine.certify(policy, alpha, static=True),
            default_probability=intervals.default_probability_bounds().lower,
            total_violations=intervals.house.lower,
        )
    report = engine.evaluate(policy)
    return CertificationDocument(
        certificate=engine.certify(policy, alpha),
        default_probability=report.default_probability,
        total_violations=report.total_violations,
    )

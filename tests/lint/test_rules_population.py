"""Targeted firing / non-firing tests for the population layer.

Each PVL21x rule gets one fixture engineered to trip it and one
counterpart engineered to stay quiet, linted with ``select`` so other
layers cannot mask the behaviour under test.
"""

from __future__ import annotations

import pytest

from repro.lint import Layer, get_rule, lint_documents, LintConfig
from repro.taxonomy import standard_taxonomy

from .conftest import rule


def codes(report):
    return report.codes()


class TestCatalogue:
    def test_population_rules_registered(self):
        for code in ("PVL210", "PVL211", "PVL212", "PVL213", "PVL214"):
            info = get_rule(code)
            assert info.layer is Layer.POPULATION

    def test_scopes_support_incremental_decomposition(self):
        assert get_rule("PVL210").scope == "provider"
        assert get_rule("PVL211").scope == "provider"
        assert get_rule("PVL214").scope == "provider"
        assert get_rule("PVL212").scope == "global"
        assert get_rule("PVL213").scope == "global"


class TestDeadPreferenceClause:
    @pytest.fixture()
    def two_purpose_taxonomy(self):
        return standard_taxonomy(["billing", "research"])

    def test_fires_on_unused_purpose(self, two_purpose_taxonomy):
        policy = {"name": "p", "rules": [rule()]}  # collects under billing
        population = {
            "providers": [
                {
                    "provider": "a",
                    "preferences": [rule(purpose="research")],
                }
            ]
        }
        report = lint_documents(
            two_purpose_taxonomy,
            policy=policy,
            population=population,
            select=["PVL210"],
        )
        assert codes(report) == ("PVL210",)
        payload = report.diagnostics[0].payload
        assert payload["purpose"] == "research"
        assert payload["policy_purposes"] == ["billing"]

    def test_quiet_when_purpose_is_used(self, two_purpose_taxonomy):
        policy = {"name": "p", "rules": [rule()]}
        population = {
            "providers": [{"provider": "a", "preferences": [rule()]}]
        }
        report = lint_documents(
            two_purpose_taxonomy,
            policy=policy,
            population=population,
            select=["PVL210"],
        )
        assert not report

    def test_quiet_when_attribute_not_collected(self, two_purpose_taxonomy):
        # The policy never touches "name": that gap is PVL106's business,
        # not a dead clause.
        policy = {"name": "p", "rules": [rule()]}
        population = {
            "providers": [
                {
                    "provider": "a",
                    "preferences": [rule(attribute="name")],
                }
            ]
        }
        report = lint_documents(
            two_purpose_taxonomy,
            policy=policy,
            population=population,
            select=["PVL210"],
        )
        assert not report


class TestSubsumedPreference:
    def test_fires_on_strict_domination(self, taxonomy, clean_policy):
        population = {
            "providers": [
                {
                    "provider": "permissive",
                    "preferences": [
                        rule(
                            visibility="all",
                            granularity="specific",
                            retention="indefinite",
                        )
                    ],
                }
            ]
        }
        report = lint_documents(
            taxonomy,
            policy=clean_policy,
            population=population,
            select=["PVL211"],
        )
        assert codes(report) == ("PVL211",)
        assert report.diagnostics[0].location.name == "permissive"

    def test_equality_is_not_subsumption(self, taxonomy, clean_policy):
        population = {
            "providers": [
                {"provider": "exact", "preferences": [rule()]}
            ]
        }
        report = lint_documents(
            taxonomy,
            policy=clean_policy,
            population=population,
            select=["PVL211"],
        )
        assert not report

    def test_tighter_preference_is_not_subsumed(self, taxonomy, clean_policy):
        population = {
            "providers": [
                {
                    "provider": "strict",
                    "preferences": [
                        rule(
                            visibility="owner",
                            granularity="existential",
                            retention="transaction",
                        )
                    ],
                }
            ]
        }
        report = lint_documents(
            taxonomy,
            policy=clean_policy,
            population=population,
            select=["PVL211"],
        )
        assert not report


class TestVacuousPolicy:
    def test_fires_when_no_provider_can_be_violated(
        self, taxonomy, clean_policy
    ):
        population = {
            "providers": [
                {"provider": "a", "preferences": [rule()]},
                {
                    "provider": "b",
                    "preferences": [
                        rule(
                            visibility="all",
                            granularity="specific",
                            retention="indefinite",
                        )
                    ],
                },
            ]
        }
        report = lint_documents(
            taxonomy,
            policy=clean_policy,
            population=population,
            select=["PVL212"],
        )
        assert codes(report) == ("PVL212",)
        assert report.diagnostics[0].payload["house_upper"] == 0.0

    def test_quiet_when_any_provider_is_violated(
        self, taxonomy, clean_policy, clean_population
    ):
        report = lint_documents(
            taxonomy,
            policy=clean_policy,
            population=clean_population,
            select=["PVL212"],
        )
        assert not report

    def test_quiet_without_policy_rules(self, taxonomy, clean_population):
        report = lint_documents(
            taxonomy,
            policy={"name": "empty", "rules": []},
            population=clean_population,
            select=["PVL212"],
        )
        assert not report


class TestStaticallyCertifiable:
    def test_fires_when_alpha_holds(
        self, taxonomy, clean_policy, clean_population
    ):
        report = lint_documents(
            taxonomy,
            policy=clean_policy,
            population=clean_population,
            config=LintConfig(alpha=0.5),
            select=["PVL213"],
        )
        assert codes(report) == ("PVL213",)
        payload = report.diagnostics[0].payload
        assert payload["alpha"] == 0.5
        assert payload["violation_probability"] == 0.5

    def test_quiet_without_alpha(
        self, taxonomy, clean_policy, clean_population
    ):
        report = lint_documents(
            taxonomy,
            policy=clean_policy,
            population=clean_population,
            select=["PVL213"],
        )
        assert not report

    def test_quiet_when_alpha_fails(
        self, taxonomy, clean_policy, clean_population
    ):
        # P(W) = 0.5 > 0.25: the failing direction belongs to PVL110.
        report = lint_documents(
            taxonomy,
            policy=clean_policy,
            population=clean_population,
            config=LintConfig(alpha=0.25),
            select=["PVL213"],
        )
        assert not report


class TestInevitableDefault:
    def test_fires_when_threshold_statically_exceeded(
        self, taxonomy, clean_policy
    ):
        population = {
            "attribute_sensitivities": {"weight": 2.0},
            "providers": [
                {
                    "provider": "fragile",
                    "threshold": 0.5,
                    "preferences": [
                        rule(
                            visibility="owner",
                            granularity="existential",
                            retention="transaction",
                        )
                    ],
                    "sensitivities": {"weight": {"value": 1.0}},
                }
            ],
        }
        report = lint_documents(
            taxonomy,
            policy=clean_policy,
            population=population,
            select=["PVL214"],
        )
        assert codes(report) == ("PVL214",)
        diagnostic = report.diagnostics[0]
        assert diagnostic.location.name == "fragile"
        assert diagnostic.payload["severity_lower"] > 0.5
        assert diagnostic.payload["threshold"] == 0.5

    def test_quiet_when_threshold_is_roomy(
        self, taxonomy, clean_policy, clean_population
    ):
        report = lint_documents(
            taxonomy,
            policy=clean_policy,
            population=clean_population,
            select=["PVL214"],
        )
        assert not report

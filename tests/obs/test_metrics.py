"""Unit tests for the metrics registry: instruments, summaries, export."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    escape_label_value,
    snapshot_to_prometheus,
)
from repro.obs.metrics import MAX_TIMER_SAMPLES


class TestCounters:
    def test_increment_and_default_amount(self):
        registry = MetricsRegistry()
        counter = registry.counter("engine.evaluations")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_same_name_and_labels_share_an_instrument(self):
        registry = MetricsRegistry()
        registry.counter("hits", path="delta").inc()
        registry.counter("hits", path="delta").inc()
        assert registry.counter("hits", path="delta").value == 2.0

    def test_distinct_labels_are_distinct_instruments(self):
        registry = MetricsRegistry()
        registry.counter("hits", path="delta").inc()
        registry.counter("hits", path="full").inc(5)
        assert registry.counter("hits", path="delta").value == 1.0
        assert registry.counter("hits", path="full").value == 5.0

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("hits").inc(-1)


class TestGauges:
    def test_set_overwrites(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("population")
        gauge.set(80)
        gauge.set(41)
        assert gauge.value == 41.0


class TestKindClaims:
    def test_name_cannot_change_kind(self):
        registry = MetricsRegistry()
        registry.counter("engine.evaluations")
        with pytest.raises(ValueError):
            registry.gauge("engine.evaluations")
        with pytest.raises(ValueError):
            registry.timer("engine.evaluations")


class TestTimerPercentiles:
    def test_nearest_rank_over_known_samples(self):
        registry = MetricsRegistry()
        timer = registry.timer("step")
        for sample in range(1, 101):
            timer.observe(float(sample))
        assert timer.percentile(0.50) == 50.0
        assert timer.percentile(0.95) == 95.0
        assert timer.percentile(1.00) == 100.0

    def test_single_sample(self):
        registry = MetricsRegistry()
        timer = registry.timer("step")
        timer.observe(0.25)
        assert timer.percentile(0.50) == 0.25
        assert timer.percentile(0.95) == 0.25

    def test_empty_timer_percentile_is_zero(self):
        timer = MetricsRegistry().timer("step")
        assert timer.percentile(0.5) == 0.0

    def test_invalid_quantile_rejected(self):
        timer = MetricsRegistry().timer("step")
        with pytest.raises(ValueError):
            timer.percentile(0.0)
        with pytest.raises(ValueError):
            timer.percentile(1.5)

    def test_negative_duration_rejected(self):
        timer = MetricsRegistry().timer("step")
        with pytest.raises(ValueError):
            timer.observe(-0.1)

    def test_summary_fields(self):
        registry = MetricsRegistry()
        timer = registry.timer("step")
        for sample in (1.0, 2.0, 3.0, 4.0):
            timer.observe(sample)
        summary = timer.summary()
        assert summary["count"] == 4
        assert summary["total"] == 10.0
        assert summary["mean"] == 2.5
        assert summary["p50"] == 2.0
        assert summary["p95"] == 4.0
        assert summary["max"] == 4.0

    def test_count_total_max_exact_beyond_sample_cap(self):
        registry = MetricsRegistry()
        timer = registry.timer("step")
        for _ in range(MAX_TIMER_SAMPLES + 10):
            timer.observe(1.0)
        timer.observe(7.0)
        summary = timer.summary()
        assert summary["count"] == MAX_TIMER_SAMPLES + 11
        assert summary["max"] == 7.0

    def test_time_context_manager_records_a_sample(self):
        registry = MetricsRegistry()
        timer = registry.timer("block")
        with timer.time():
            pass
        assert timer.count == 1
        assert timer.total >= 0.0


class TestSnapshot:
    def test_snapshot_is_sorted_and_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("zeta").inc()
        registry.counter("alpha", kind="b").inc()
        registry.counter("alpha", kind="a").inc()
        registry.gauge("g").set(1)
        registry.timer("t").observe(0.5)
        snapshot = registry.snapshot()
        names = [(c["name"], tuple(sorted(c["labels"].items()))) for c in snapshot["counters"]]
        assert names == sorted(names)
        json.dumps(snapshot)  # must not raise

    def test_labels_stringified(self):
        registry = MetricsRegistry()
        registry.counter("faults.fired", at=3).inc()
        [entry] = registry.snapshot()["counters"]
        assert entry["labels"] == {"at": "3"}


class TestPrometheus:
    def test_counter_gauge_timer_families(self):
        registry = MetricsRegistry()
        registry.counter("engine.evaluations").inc(3)
        registry.gauge("population").set(80)
        registry.timer("step").observe(0.5)
        text = registry.to_prometheus()
        assert "# TYPE repro_engine_evaluations_total counter" in text
        assert "repro_engine_evaluations_total 3.0" in text
        assert "# TYPE repro_population gauge" in text
        assert "repro_population 80.0" in text
        assert "# TYPE repro_step_seconds summary" in text
        assert 'repro_step_seconds{quantile="0.5"} 0.5' in text
        assert "repro_step_seconds_sum 0.5" in text
        assert "repro_step_seconds_count 1.0" in text
        assert "repro_step_seconds_max 0.5" in text
        assert text.endswith("\n")

    def test_label_escaping(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_escaped_labels_in_exposition(self):
        registry = MetricsRegistry()
        registry.counter("faults.fired", site='we"ird\nsite\\x').inc()
        text = registry.to_prometheus()
        assert 'site="we\\"ird\\nsite\\\\x"' in text

    def test_dotted_names_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("storage.locked-retries").inc()
        text = registry.to_prometheus()
        assert "repro_storage_locked_retries_total 1.0" in text

    def test_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("hits", path="delta").inc(2)
        registry.timer("step").observe(0.25)
        live = registry.to_prometheus()
        reloaded = snapshot_to_prometheus(
            json.loads(json.dumps(registry.snapshot()))
        )
        assert reloaded == live

    def test_empty_snapshot_renders_empty(self):
        assert snapshot_to_prometheus(MetricsRegistry().snapshot()) == ""

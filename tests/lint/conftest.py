"""Shared document fixtures for the linter tests.

The clean documents are constructed so that *no* rule fires on them:
every purpose is used, every attribute is supplied and collected, no
tuple dominates another, sensitivities are positive, and the policy
violates some — but not all — providers.
"""

from __future__ import annotations

import pytest

from repro.taxonomy import standard_taxonomy


def rule(**overrides):
    """One policy-rule / preference row with sensible defaults."""
    spec = {
        "attribute": "weight",
        "purpose": "billing",
        "visibility": "house",
        "granularity": "partial",
        "retention": "short-term",
    }
    spec.update(overrides)
    return spec


@pytest.fixture()
def taxonomy():
    return standard_taxonomy(["billing"])


@pytest.fixture()
def clean_policy():
    return {"name": "base", "rules": [rule()]}


@pytest.fixture()
def clean_population():
    # "high" tolerates exactly what the policy grants (never violated,
    # and not *strictly* looser, so the subsumed-preference rule stays
    # quiet); "low" prefers less (violated, but not defaulted) — so
    # neither the guaranteed-violation rule nor the alpha rule (at
    # alpha=1) fires.
    return {
        "attribute_sensitivities": {"weight": 2.0},
        "providers": [
            {
                "provider": "high",
                "threshold": 100,
                "preferences": [rule()],
                "sensitivities": {"weight": {"value": 1.0}},
            },
            {
                "provider": "low",
                "threshold": 100,
                "preferences": [
                    rule(visibility="owner", granularity="existential",
                         retention="transaction")
                ],
            },
        ],
    }

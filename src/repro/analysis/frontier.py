"""The privacy-utility frontier over widening options.

A house choosing among widening levels faces a bi-objective problem:
maximise future utility, minimise the privacy damage (here: the default
probability — the damage that feeds back on the house; ``P(W)`` works
too and is recorded alongside).  The **Pareto frontier** of a widening
sweep is the set of levels not dominated by any other: no alternative is
at least as good on both objectives and strictly better on one.

The frontier is the decision artifact Section 9's analysis builds toward:
everything off the frontier is simply a mistake, and movement *along* it
is the genuine privacy-for-utility trade the house and its providers are
negotiating.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from ..core.policy import HousePolicy
from ..core.population import Population
from ..exceptions import ValidationError
from ..simulation.scenario import ExpansionSweep, SweepRow, run_expansion_sweep
from ..simulation.widening import WideningStep
from ..taxonomy.builder import Taxonomy
from .tables import format_table


@dataclass(frozen=True, slots=True)
class FrontierPoint:
    """One non-dominated widening level."""

    step: int
    utility_future: float
    default_probability: float
    violation_probability: float

    @classmethod
    def of(cls, row: SweepRow) -> "FrontierPoint":
        """Project a sweep row onto the frontier objectives."""
        return cls(
            step=row.step,
            utility_future=row.utility_future,
            default_probability=row.default_probability,
            violation_probability=row.violation_probability,
        )


@dataclass(frozen=True)
class ParetoFrontier:
    """The non-dominated widening levels, ordered by increasing damage."""

    points: tuple[FrontierPoint, ...]
    dominated_steps: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.points:
            raise ValidationError("a frontier needs at least one point")

    def best_utility(self) -> FrontierPoint:
        """The frontier point with the highest utility."""
        return max(self.points, key=lambda p: (p.utility_future, -p.step))

    def most_private(self) -> FrontierPoint:
        """The frontier point with the least default damage."""
        return min(self.points, key=lambda p: (p.default_probability, p.step))

    def knee(self) -> FrontierPoint:
        """The point of steepest diminishing returns.

        The frontier point maximising *utility gained per unit of damage*
        relative to the most private point — the standard "knee" heuristic
        for picking a single operating point off a frontier.
        """
        anchor = self.most_private()
        best = anchor
        best_slope = 0.0
        for point in self.points:
            damage = point.default_probability - anchor.default_probability
            gain = point.utility_future - anchor.utility_future
            if damage <= 0:
                continue
            slope = gain / damage
            if slope > best_slope:
                best_slope = slope
                best = point
        return best

    def to_text(self) -> str:
        """A fixed-width rendering of the frontier."""
        return format_table(
            ["step", "P(Default)", "P(W)", "U_future"],
            [
                [
                    p.step,
                    round(p.default_probability, 4),
                    round(p.violation_probability, 4),
                    p.utility_future,
                ]
                for p in self.points
            ],
            title="privacy-utility frontier (non-dominated widening levels)",
        )


def _dominates(a: SweepRow, b: SweepRow) -> bool:
    """True when *a* is at least as good as *b* everywhere, better somewhere.

    "Good" = higher future utility, lower default probability.
    """
    at_least_as_good = (
        a.utility_future >= b.utility_future
        and a.default_probability <= b.default_probability
    )
    strictly_better = (
        a.utility_future > b.utility_future
        or a.default_probability < b.default_probability
    )
    return at_least_as_good and strictly_better


def sweep_frontier(
    population: Population,
    base_policy: HousePolicy,
    taxonomy: Taxonomy,
    *,
    step: WideningStep | None = None,
    max_steps: int = 5,
    per_provider_utility: float = 1.0,
    extra_utility_per_step: float = 0.25,
    attributes: Iterable[str] | None = None,
    purposes: Iterable[str] | None = None,
    implicit_zero: bool = True,
    workers: int = 1,
) -> ParetoFrontier:
    """Run a widening sweep and return its Pareto frontier directly.

    Convenience wrapper over :func:`run_expansion_sweep` (which compiles
    the population once and evaluates every level through the batch
    engine — sharded over ``workers`` processes when asked) followed by
    :func:`pareto_frontier` — the common case when only the decision
    artifact is wanted, not the full sweep table.
    """
    sweep = run_expansion_sweep(
        population,
        base_policy,
        taxonomy,
        step=step,
        max_steps=max_steps,
        per_provider_utility=per_provider_utility,
        extra_utility_per_step=extra_utility_per_step,
        attributes=attributes,
        purposes=purposes,
        scenario_name="frontier-sweep",
        implicit_zero=implicit_zero,
        workers=workers,
    )
    return pareto_frontier(sweep)


def pareto_frontier(sweep: ExpansionSweep) -> ParetoFrontier:
    """Extract the Pareto frontier from a widening sweep."""
    if not sweep.rows:
        raise ValidationError("cannot build a frontier from an empty sweep")
    non_dominated: list[SweepRow] = []
    dominated: list[int] = []
    for candidate in sweep.rows:
        if any(
            _dominates(other, candidate)
            for other in sweep.rows
            if other is not candidate
        ):
            dominated.append(candidate.step)
        else:
            non_dominated.append(candidate)
    non_dominated.sort(key=lambda row: (row.default_probability, row.step))
    return ParetoFrontier(
        points=tuple(FrontierPoint.of(row) for row in non_dominated),
        dominated_steps=tuple(dominated),
    )

"""Unit tests for the shared validation helpers and exception hierarchy."""

from __future__ import annotations

import pytest

from repro._validation import (
    check_int,
    check_non_empty_str,
    check_probability,
    check_real,
    check_type,
    check_unique,
)
from repro.exceptions import (
    AccessDeniedError,
    DomainError,
    PolicyDocumentError,
    PrivacyModelError,
    SchemaMismatchError,
    SimulationError,
    StorageError,
    UnknownAttributeError,
    UnknownProviderError,
    UnknownPurposeError,
    ValidationError,
)


class TestCheckType:
    def test_accepts_instance(self):
        assert check_type(3, int, "x") == 3

    def test_accepts_tuple_of_types(self):
        assert check_type("a", (int, str), "x") == "a"

    def test_rejects_wrong_type(self):
        with pytest.raises(ValidationError, match="x must be int"):
            check_type("a", int, "x")


class TestCheckNonEmptyStr:
    def test_accepts(self):
        assert check_non_empty_str("hello", "x") == "hello"

    def test_rejects_blank(self):
        with pytest.raises(ValidationError):
            check_non_empty_str("   ", "x")

    def test_rejects_non_string(self):
        with pytest.raises(ValidationError):
            check_non_empty_str(3, "x")


class TestCheckInt:
    def test_accepts_int(self):
        assert check_int(5, "x") == 5

    def test_accepts_numpy_integers(self):
        import numpy as np

        assert check_int(np.int64(5), "x") == 5

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(ValidationError):
            check_int(5.0, "x")

    def test_minimum(self):
        assert check_int(0, "x", minimum=0) == 0
        with pytest.raises(ValidationError):
            check_int(-1, "x", minimum=0)


class TestCheckReal:
    def test_accepts_int_and_float(self):
        assert check_real(5, "x") == 5.0
        assert check_real(5.5, "x") == 5.5

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_real(True, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_real(float("nan"), "x")

    def test_minimum(self):
        with pytest.raises(ValidationError):
            check_real(-0.1, "x", minimum=0.0)


class TestCheckProbability:
    def test_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ValidationError):
            check_probability(1.01, "p")
        with pytest.raises(ValidationError):
            check_probability(-0.01, "p")


class TestCheckUnique:
    def test_accepts_unique(self):
        assert check_unique([1, 2, 3], "item") == [1, 2, 3]

    def test_rejects_duplicates(self):
        with pytest.raises(ValidationError, match="duplicate item"):
            check_unique([1, 2, 1], "item")


class TestExceptionHierarchy:
    def test_all_derive_from_base(self):
        for exception_type in (
            ValidationError,
            DomainError,
            UnknownAttributeError,
            UnknownPurposeError,
            UnknownProviderError,
            PolicyDocumentError,
            StorageError,
            SchemaMismatchError,
            AccessDeniedError,
            SimulationError,
        ):
            assert issubclass(exception_type, PrivacyModelError)

    def test_validation_errors_are_value_errors(self):
        assert issubclass(ValidationError, ValueError)
        assert issubclass(DomainError, ValidationError)

    def test_unknown_provider_is_key_error(self):
        assert issubclass(UnknownProviderError, KeyError)

    def test_domain_error_fields(self):
        error = DomainError("visibility", "galaxy")
        assert error.domain_name == "visibility"
        assert error.value == "galaxy"
        assert "galaxy" in str(error)

    def test_access_denied_carries_decision(self):
        error = AccessDeniedError("nope", decision={"why": "test"})
        assert error.decision == {"why": "test"}

    def test_unknown_attribute_and_purpose_fields(self):
        assert UnknownAttributeError("height").attribute == "height"
        assert UnknownPurposeError("resale").purpose == "resale"

"""Parity: the parallel shard executor must equal the serial batch engine.

The :class:`~repro.perf.parallel.ShardExecutor` fans ``(policy, shard)``
tasks over worker processes attached to a shared-memory export of the
compiled population.  Because shards are contiguous row ranges and every
per-shard kernel accumulates the same floating-point operations in the
same order as the full-population kernel, the merged reports must be
**bit-for-bit identical** to the serial engine's — not merely close.
These tests hold it to that, reusing the randomized dyadic scenario
corpus from :mod:`tests.properties.test_batch_parity` plus the awkward
partitions: ``n_providers % workers != 0``, ``workers > n_providers``,
empty shards, and the empty population.
"""

from __future__ import annotations

import glob
import random

import numpy as np
import pytest

from repro.core import HousePolicy, Population, PrivacyTuple, ViolationEngine
from repro.exceptions import ValidationError
from repro.game import FixedWidening, play_widening_game
from repro.perf import (
    BatchViolationEngine,
    ShardExecutor,
    SharedArrayPack,
    attach_arrays,
    evaluate_chunked,
    make_batch_engine,
    resolve_workers,
    shard_bounds,
)
from repro.analysis import sweep_frontier
from repro.simulation import run_dynamics, run_expansion_sweep
from repro.simulation.widening import WideningStep

from tests.properties.test_batch_parity import (
    _dyadic,
    _random_policy,
    _random_population,
    _random_provider,
)


def _assert_reports_identical(parallel, serial) -> None:
    """Every field of two BatchReports, compared exactly."""
    assert parallel.policy_name == serial.policy_name
    assert parallel.n_providers == serial.n_providers
    assert parallel.n_violated == serial.n_violated
    assert parallel.n_defaulted == serial.n_defaulted
    assert parallel.violation_probability == serial.violation_probability
    assert parallel.default_probability == serial.default_probability
    assert parallel.total_violations == serial.total_violations
    assert parallel.provider_ids == serial.provider_ids
    assert parallel.segments == serial.segments
    assert np.array_equal(parallel.violations, serial.violations)
    assert np.array_equal(parallel.thresholds, serial.thresholds)
    assert np.array_equal(parallel.violated, serial.violated)
    assert np.array_equal(parallel.defaulted, serial.defaulted)


def _no_leaked_segments() -> bool:
    return glob.glob("/dev/shm/pvl_*") == []


# ---------------------------------------------------------------------------
# shard partitioning and worker-count resolution
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "n,shards", [(0, 1), (1, 1), (7, 3), (2, 4), (100, 7), (5, 5), (6, 2)]
)
def test_shard_bounds_cover_exactly(n, shards):
    bounds = shard_bounds(n, shards)
    assert len(bounds) == shards
    assert bounds[0][0] == 0
    assert bounds[-1][1] == n
    for (lo, hi), (next_lo, _) in zip(bounds, bounds[1:]):
        assert hi == next_lo  # contiguous, no gaps, no overlap
    sizes = [hi - lo for lo, hi in bounds]
    assert sum(sizes) == n
    assert max(sizes) - min(sizes) <= 1  # balanced to within one row


def test_shard_bounds_empty_tails():
    assert shard_bounds(2, 4) == [(0, 1), (1, 2), (2, 2), (2, 2)]


def test_shard_bounds_validation():
    with pytest.raises(ValidationError):
        shard_bounds(-1, 2)
    with pytest.raises(ValidationError):
        shard_bounds(5, 0)


def test_resolve_workers():
    assert resolve_workers(1) == 1
    assert resolve_workers(4) == 4
    assert resolve_workers(0) >= 1  # auto: one per CPU, at least one
    for bad in (True, False, -1, 2.0, "2", None):
        with pytest.raises(ValidationError):
            resolve_workers(bad)


def test_shared_array_pack_roundtrip():
    arrays = {
        "a": np.arange(17, dtype=np.float64),
        "b": np.arange(6, dtype=np.int64).reshape(2, 3),
        "empty": np.zeros(0, dtype=np.float64),
    }
    with SharedArrayPack(arrays) as pack:
        shm, attached = attach_arrays(pack.name, pack.layout)
        try:
            for key, original in arrays.items():
                assert attached[key].dtype == original.dtype
                assert attached[key].shape == original.shape
                assert np.array_equal(attached[key], original)
        finally:
            del attached
            shm.close()
    assert _no_leaked_segments()


# ---------------------------------------------------------------------------
# executor vs serial engine over the randomized corpus
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(10))
def test_randomized_corpus_parity(seed):
    """workers=2 equals the serial engine on random scenarios, bit for bit.

    Each scenario pushes several policies through ONE executor so the
    per-worker shard engines exercise their cache and delta paths, then
    repeats one policy to hit the merged-report cache.
    """
    rng = random.Random(31_000 + seed)
    population = _random_population(rng)
    policies = [
        _random_policy(rng, name=f"par-{seed}-{k}") for k in range(3)
    ]
    implicit_zero = seed % 3 != 0
    serial = BatchViolationEngine(population, implicit_zero=implicit_zero)
    with ShardExecutor(
        population, workers=2, implicit_zero=implicit_zero
    ) as executor:
        for policy in policies:
            _assert_reports_identical(
                executor.evaluate(policy), serial.evaluate(policy)
            )
        # Repeat: served from the executor's merged-report cache.
        _assert_reports_identical(
            executor.evaluate(policies[0]), serial.evaluate(policies[0])
        )
        for alpha in (0.0, 0.25, 1.0):
            assert executor.certify(policies[0], alpha) == serial.certify(
                policies[0], alpha
            )
    assert _no_leaked_segments()


@pytest.mark.parametrize(
    "n_providers,workers,shards",
    [
        (5, 2, None),  # n % workers != 0
        (3, 7, None),  # workers > n_providers
        (4, 2, 9),  # explicit empty shards
        (1, 3, None),  # single provider, several workers
    ],
)
def test_awkward_partitions_parity(n_providers, workers, shards):
    rng = random.Random(77_000 + n_providers * 31 + workers)
    population = Population(
        [_random_provider(rng, index) for index in range(n_providers)],
        attribute_sensitivities={"name": _dyadic(rng), "weight": _dyadic(rng)},
    )
    policy = _random_policy(rng, name=f"awkward-{n_providers}-{workers}")
    serial = BatchViolationEngine(population)
    with ShardExecutor(population, workers=workers, shards=shards) as executor:
        if shards is not None:
            assert len(executor.bounds) == shards
        _assert_reports_identical(
            executor.evaluate(policy), serial.evaluate(policy)
        )
    assert _no_leaked_segments()


def test_empty_population_parity():
    population = Population([], attribute_sensitivities={"name": 1.0})
    policy = HousePolicy(
        [("name", PrivacyTuple("billing", 1, 1, 1))], name="empty-pop"
    )
    serial = BatchViolationEngine(population)
    with ShardExecutor(population, workers=2) as executor:
        _assert_reports_identical(
            executor.evaluate(policy), serial.evaluate(policy)
        )
        certificate = executor.certify(policy, 0.5)
        assert certificate == serial.certify(policy, 0.5)
        assert certificate.satisfied
    assert _no_leaked_segments()


def test_evaluate_policies_preserves_order():
    rng = random.Random(123)
    population = _random_population(rng)
    policies = [_random_policy(rng, name=f"batch-{k}") for k in range(5)]
    serial = BatchViolationEngine(population)
    with ShardExecutor(population, workers=2) as executor:
        reports = executor.evaluate_policies(policies)
        assert [r.policy_name for r in reports] == [p.name for p in policies]
        for policy, report in zip(policies, reports):
            _assert_reports_identical(report, serial.evaluate(policy))
    assert _no_leaked_segments()


def test_parallel_matches_reference_oracle():
    """Transitively: parallel == serial batch == reference ViolationEngine."""
    rng = random.Random(9)
    population = _random_population(rng)
    policy = _random_policy(rng, name="oracle")
    reference = ViolationEngine(policy, population).report()
    with ShardExecutor(population, workers=2) as executor:
        report = executor.evaluate(policy)
    assert report.violated_ids() == reference.violated_ids()
    assert report.defaulted_ids() == reference.defaulted_ids()
    assert report.total_violations == reference.total_violations
    assert report.violation_probability == reference.violation_probability


# ---------------------------------------------------------------------------
# certification
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(6))
def test_certify_exact_parity(seed):
    rng = random.Random(41_000 + seed)
    population = _random_population(rng)
    policy = _random_policy(rng, name=f"cert-{seed}")
    serial = BatchViolationEngine(population)
    with ShardExecutor(population, workers=2) as executor:
        for alpha in (0.0, 0.1, 0.3, 0.5, 1.0):
            assert executor.certify(policy, alpha) == serial.certify(
                policy, alpha
            )
    assert _no_leaked_segments()


@pytest.mark.parametrize("seed", range(6))
def test_certify_early_exit_verdict_parity(seed):
    """Early exit may skip columns but the *verdict* always matches.

    When no shard trips the budget flag every shard ran exhaustively and
    the certificate is exact; a tripped flag means the shard alone
    refutes the global budget, so ``satisfied=False`` is guaranteed
    correct.  Only the serial certificate is compared field-by-field
    when the parallel one claims exhaustiveness.
    """
    rng = random.Random(43_000 + seed)
    population = _random_population(rng)
    policy = _random_policy(rng, name=f"early-{seed}")
    serial = BatchViolationEngine(population)
    with ShardExecutor(population, workers=2) as executor:
        for alpha in (0.0, 0.1, 0.5, 1.0):
            exact = serial.certify(policy, alpha)
            early = executor.certify(policy, alpha, early_exit=True)
            assert early.satisfied == exact.satisfied
            if early.exhaustive:
                assert early == exact
    assert _no_leaked_segments()


# ---------------------------------------------------------------------------
# chunked / streaming evaluation
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("chunk_size", [1, 2, 5])
def test_chunked_evaluation_parity(chunk_size):
    rng = random.Random(55_000 + chunk_size)
    population = _random_population(rng)
    policies = [_random_policy(rng, name=f"chunk-{k}") for k in range(3)]
    serial = BatchViolationEngine(population)
    reports = evaluate_chunked(population, policies, chunk_size=chunk_size)
    assert len(reports) == len(policies)
    for policy, report in zip(policies, reports):
        _assert_reports_identical(report, serial.evaluate(policy))


def test_chunked_parallel_evaluation_parity():
    rng = random.Random(56_000)
    population = _random_population(rng)
    policies = [_random_policy(rng, name=f"cpk-{k}") for k in range(2)]
    serial = BatchViolationEngine(population)
    reports = evaluate_chunked(
        population, policies, chunk_size=3, workers=2
    )
    for policy, report in zip(policies, reports):
        _assert_reports_identical(report, serial.evaluate(policy))
    assert _no_leaked_segments()


# ---------------------------------------------------------------------------
# callers: the workers knob must not change results
# ---------------------------------------------------------------------------


def test_sweep_parity_across_workers(small_crm):
    serial = run_expansion_sweep(
        small_crm.population, small_crm.policy, small_crm.taxonomy, max_steps=3
    )
    parallel = run_expansion_sweep(
        small_crm.population,
        small_crm.policy,
        small_crm.taxonomy,
        max_steps=3,
        workers=2,
    )
    assert parallel.rows == serial.rows
    assert _no_leaked_segments()


def test_frontier_parity_across_workers(small_crm):
    serial = sweep_frontier(
        small_crm.population, small_crm.policy, small_crm.taxonomy, max_steps=3
    )
    parallel = sweep_frontier(
        small_crm.population,
        small_crm.policy,
        small_crm.taxonomy,
        max_steps=3,
        workers=2,
    )
    assert parallel.points == serial.points
    assert parallel.dominated_steps == serial.dominated_steps
    assert _no_leaked_segments()


def test_dynamics_parity_across_workers(small_crm):
    serial = run_dynamics(
        small_crm.population, small_crm.policy, small_crm.taxonomy, rounds=3
    )
    parallel = run_dynamics(
        small_crm.population,
        small_crm.policy,
        small_crm.taxonomy,
        rounds=3,
        workers=2,
    )
    assert parallel == serial
    assert _no_leaked_segments()


def test_game_parity_across_workers(small_crm):
    strategy = FixedWidening(WideningStep.uniform(1), 3)
    serial = play_widening_game(
        small_crm.population, small_crm.policy, small_crm.taxonomy, strategy
    )
    parallel = play_widening_game(
        small_crm.population,
        small_crm.policy,
        small_crm.taxonomy,
        FixedWidening(WideningStep.uniform(1), 3),
        workers=2,
    )
    assert parallel == serial
    assert _no_leaked_segments()


# ---------------------------------------------------------------------------
# lifecycle
# ---------------------------------------------------------------------------


def test_make_batch_engine_dispatch():
    from repro.perf.delta import MutableBatchEngine
    from repro.perf.supervisor import SupervisedExecutor

    rng = random.Random(7)
    population = _random_population(rng)
    # A Population gets the mutable facade; the worker count picks its
    # execution backend.
    engine = make_batch_engine(population, workers=1)
    assert isinstance(engine, MutableBatchEngine)
    assert isinstance(engine.inner_engine, BatchViolationEngine)
    engine.close()
    # workers > 1 defaults to the supervised pool ...
    engine = make_batch_engine(population, workers=2)
    assert isinstance(engine, MutableBatchEngine)
    assert isinstance(engine.inner_engine, SupervisedExecutor)
    engine.close()
    # ... and supervised=False opts back into the fail-fast executor.
    engine = make_batch_engine(population, workers=2, supervised=False)
    assert isinstance(engine, MutableBatchEngine)
    assert isinstance(engine.inner_engine, ShardExecutor)
    engine.close()
    # mutable=False (or a pre-compiled population) gets the bare engines.
    engine = make_batch_engine(population, workers=1, mutable=False)
    assert isinstance(engine, BatchViolationEngine)
    engine.close()
    engine = make_batch_engine(population, workers=2, mutable=False)
    assert isinstance(engine, SupervisedExecutor)
    engine.close()
    assert _no_leaked_segments()


def test_close_is_idempotent_and_segment_released():
    rng = random.Random(8)
    population = _random_population(rng)
    executor = ShardExecutor(population, workers=2)
    name = executor.segment_name
    assert glob.glob(f"/dev/shm/{name}")
    executor.close()
    executor.close()  # second close is a no-op
    assert _no_leaked_segments()


def test_executor_rejects_invalid_population():
    with pytest.raises(ValidationError):
        ShardExecutor(object(), workers=2)  # type: ignore[arg-type]

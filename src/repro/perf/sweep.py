"""Sweep-level conveniences on top of the batch engine.

The Section 9 workloads pair every policy evaluation with the expansion
economics (Eqs. 25-31).  The reference path
(:func:`~repro.core.economics.assess_expansion`) re-runs the per-provider
severity loop to count defaults; when a :class:`~repro.perf.batch.BatchReport`
is already in hand the defaults are sitting in an array, so the
assessment is pure arithmetic.  :func:`batch_assess_expansion` builds the
identical :class:`~repro.core.economics.ExpansionAssessment` from the
report without touching the model again.
"""

from __future__ import annotations

from .._validation import check_real
from ..obs import active_observer
from ..core.economics import (
    ExpansionAssessment,
    break_even_extra_utility,
    expansion_justified,
    n_future,
    utility_current,
    utility_future,
)
from .batch import BatchReport


def batch_assess_expansion(
    report: BatchReport,
    per_provider_utility: float,
    extra_utility: float,
) -> ExpansionAssessment:
    """Section 9's trade-off evaluated from an existing batch report.

    Produces exactly what
    :func:`~repro.core.economics.assess_expansion` would for the same
    policy and population — the defaulted-provider set is read off the
    report instead of being recomputed provider by provider.

    Parameters
    ----------
    report:
        The candidate policy's batch evaluation.
    per_provider_utility:
        ``U``, the utility each provider currently yields.
    extra_utility:
        ``T``, the extra per-provider utility the widening unlocks.
    """
    per_provider_utility = check_real(
        per_provider_utility, "per_provider_utility", minimum=0.0
    )
    extra_utility = check_real(extra_utility, "extra_utility", minimum=0.0)
    obs = active_observer()
    if obs is not None:
        obs.inc("sweep.assessments")
    defaulted = report.defaulted_ids()
    current_n = report.n_providers
    future_n = n_future(current_n, len(defaulted))
    return ExpansionAssessment(
        policy_name=report.policy_name,
        n_current=current_n,
        n_future=future_n,
        defaulted_providers=defaulted,
        per_provider_utility=float(per_provider_utility),
        extra_utility=float(extra_utility),
        utility_current=utility_current(current_n, per_provider_utility),
        utility_future=utility_future(
            future_n, per_provider_utility, extra_utility
        ),
        break_even_extra_utility=break_even_extra_utility(
            per_provider_utility, current_n, future_n
        ),
        justified=expansion_justified(
            per_provider_utility, extra_utility, current_n, future_n
        ),
    )

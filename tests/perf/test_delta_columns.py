"""The worker column-delta protocol, end to end.

Three layers are under test, bottom-up:

* the **column diff** — :func:`changed_column_keys` /
  :func:`policy_delta_columns` / :func:`plan_delta` agree on what
  "changed" means, including the awkward edges (attribute removed
  entirely, purpose added under an existing attribute, name-only
  renames, empty policies);
* the **serial foundations** — canonical per-column summation makes
  chained delta evaluations, rebases onto cached bases, and fresh full
  evaluations produce bit-for-bit identical arrays;
* the **wire protocol** — :class:`SupervisedExecutor`'s targeted
  dispatch rescores *exactly* the changed columns per shard after the
  base round (asserted through ``parallel.columns_rescored``), stays
  bit-for-bit under worker kills, journal replay, and append-driven
  pool rebuilds, and :class:`ShardExecutor`'s opportunistic variant
  recovers misses through base replays without losing exactness.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.dimensions import Dimension
from repro.core.policy import HousePolicy
from repro.datasets import healthcare_scenario
from repro.obs import observed
from repro.perf import (
    BatchViolationEngine,
    ColumnPlan,
    ShardExecutor,
    SupervisedExecutor,
    changed_column_keys,
    column_plan,
    make_batch_engine,
    plan_delta,
    policy_columns,
    policy_fingerprint,
)
from repro.perf.parallel import TASK_FAULT_SITE
from repro.resilience import FaultSpec
from repro.simulation.widening import (
    WideningStep,
    policy_delta_columns,
    widening_policies,
)

from tests.properties.test_batch_parity import (
    _random_policy,
    _random_population,
    _random_provider,
)


def _counters(snapshot: dict) -> dict[str, float]:
    return {c["name"]: c["value"] for c in snapshot["counters"]}


def _assert_reports_identical(actual, expected) -> None:
    assert actual.policy_name == expected.policy_name
    assert actual.provider_ids == expected.provider_ids
    assert np.array_equal(actual.violations, expected.violations)
    assert np.array_equal(actual.violated, expected.violated)
    assert np.array_equal(actual.defaulted, expected.defaulted)
    assert actual.violation_probability == expected.violation_probability
    assert actual.total_violations == expected.total_violations


def _widening_scenario(n_providers: int = 40, rounds: int = 6):
    """A clinic scenario plus a saturating single-attribute widening path.

    Restricting the step to one attribute keeps per-round deltas small
    (a handful of columns out of the policy's full decomposition), and
    letting the path run past saturation exercises the empty-delta /
    repeated-fingerprint rounds too.
    """
    scenario = healthcare_scenario(n_providers, seed=3)
    first_attribute = scenario.policy.entries[0].attribute
    policies = widening_policies(
        scenario.policy,
        WideningStep.along(Dimension.RETENTION, 1),
        scenario.taxonomy,
        rounds,
        attributes=[first_attribute],
    )
    return scenario, policies


def _expected_protocol_counters(policies, shards: int):
    """Replay the parent's plan bookkeeping to predict exact counters.

    Mirrors ``SupervisedExecutor._decompose``: one decomposition per
    *new* fingerprint (repeats hit the report cache and never fan out),
    full rescore when no delta applies, per-shard changed-column rescore
    otherwise.
    """
    expected_rescored = 0
    expected_delta_tasks = 0
    seen: set = set()
    plan = None
    for policy in policies:
        fingerprint = policy_fingerprint(policy)
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        columns = dict(policy_columns(policy))
        delta = plan_delta(plan, columns)
        if delta is None:
            expected_rescored += shards * len(columns)
        else:
            expected_delta_tasks += shards
            expected_rescored += shards * len(delta)
        plan = ColumnPlan(fingerprint=fingerprint, columns=columns)
    return expected_rescored, expected_delta_tasks


# ---------------------------------------------------------------------------
# the column diff: one definition of "changed" at every layer
# ---------------------------------------------------------------------------


class TestColumnDiff:
    def test_attribute_removed_entirely(self):
        scenario, _ = _widening_scenario(n_providers=10)
        base = scenario.policy
        victim = base.entries[0].attribute
        reduced = HousePolicy(
            [e for e in base.entries if e.attribute != victim],
            name="reduced",
        )
        changed = policy_delta_columns(base, reduced)
        assert changed  # the attribute had at least one column
        assert all(attribute == victim for attribute, _ in changed)
        # Exactly the victim's columns, nothing else.
        expected = sorted(
            key for key in policy_columns(base) if key[0] == victim
        )
        assert list(changed) == expected
        # plan_delta ships the removal as explicit None entries.
        delta = plan_delta(column_plan(base), dict(policy_columns(reduced)))
        assert delta is not None
        assert set(delta) == set(expected)
        assert all(value is None for value in delta.values())

    def test_purpose_added_under_existing_attribute(self):
        scenario, _ = _widening_scenario(n_providers=10)
        base = scenario.policy
        attribute = base.entries[0].attribute
        template = base.entries[0].tuple
        extra = template.replace(purpose="brand-new-purpose")
        extended = HousePolicy(
            [*base.entries, (attribute, extra)], name="extended"
        )
        changed = policy_delta_columns(base, extended)
        assert changed == ((attribute, "brand-new-purpose"),)
        delta = plan_delta(column_plan(base), dict(policy_columns(extended)))
        assert delta == {
            (attribute, "brand-new-purpose"): policy_columns(extended)[
                (attribute, "brand-new-purpose")
            ]
        }

    def test_name_only_change_is_an_empty_delta(self):
        scenario, _ = _widening_scenario(n_providers=10)
        base = scenario.policy
        renamed = HousePolicy(base.entries, name="totally-different-name")
        assert policy_delta_columns(base, renamed) == ()
        assert policy_fingerprint(base) == policy_fingerprint(renamed)
        # plan_delta returns the *empty dict*, not None: a worker holding
        # the base serves this without recomputing anything.
        delta = plan_delta(column_plan(base), dict(policy_columns(renamed)))
        assert delta == {}

    def test_empty_policy_transitions(self):
        scenario, _ = _widening_scenario(n_providers=10)
        base = scenario.policy
        empty = HousePolicy((), name="empty")
        assert policy_delta_columns(empty, empty) == ()
        forward = policy_delta_columns(empty, base)
        backward = policy_delta_columns(base, empty)
        every_column = tuple(sorted(policy_columns(base)))
        assert forward == every_column
        assert backward == every_column
        # Against an empty plan every column of the target changes, so
        # the protocol falls back to a full decomposition ...
        assert plan_delta(column_plan(empty), dict(policy_columns(base))) is None
        # ... and symmetrically for emptying a non-empty plan.
        assert plan_delta(column_plan(base), {}) is None

    def test_changed_column_keys_is_symmetric_and_sorted(self):
        rng = random.Random(7)
        a = dict(policy_columns(_random_policy(rng, name="a")))
        b = dict(policy_columns(_random_policy(rng, name="b")))
        forward = changed_column_keys(a, b)
        backward = changed_column_keys(b, a)
        assert forward == backward
        assert list(forward) == sorted(forward)
        assert changed_column_keys(a, a) == ()

    def test_plan_delta_without_a_plan_is_full(self):
        scenario, _ = _widening_scenario(n_providers=10)
        assert plan_delta(None, dict(policy_columns(scenario.policy))) is None

    def test_plan_delta_whole_union_changed_is_full(self):
        scenario, _ = _widening_scenario(n_providers=10)
        base = scenario.policy
        # A disjoint decomposition touches every column of the union.
        disjoint = {
            (f"other-{i}", "p"): (("x",),) for i in range(3)
        }
        assert plan_delta(column_plan(base), disjoint) is None


# ---------------------------------------------------------------------------
# serial foundations: canonical summation keeps every path bitwise equal
# ---------------------------------------------------------------------------


class TestSerialCanonicalSummation:
    def test_chained_deltas_match_fresh_full_evaluations(self):
        scenario, policies = _widening_scenario()
        engine = BatchViolationEngine(scenario.population)
        for policy in policies:
            chained = engine.evaluate(policy)
            fresh = BatchViolationEngine(scenario.population).evaluate(policy)
            _assert_reports_identical(chained, fresh)

    def test_delta_evaluations_are_counted(self):
        scenario, policies = _widening_scenario()
        with observed() as obs:
            engine = BatchViolationEngine(scenario.population)
            for policy in policies:
                engine.evaluate(policy)
            counters = _counters(obs.snapshot())
        assert counters["engine.batch.full_evaluations"] == 1.0
        assert counters["engine.batch.delta_evaluations"] >= 1.0

    def test_apply_column_delta_rebases_onto_a_cached_base(self):
        scenario, policies = _widening_scenario()
        base, middle, target = policies[0], policies[1], policies[2]
        engine = BatchViolationEngine(scenario.population)
        engine.evaluate(base)
        engine.evaluate(middle)  # the resident base is now *middle*
        delta = plan_delta(column_plan(base), dict(policy_columns(target)))
        assert delta is not None
        with observed() as obs:
            patched = engine.apply_column_delta(
                policy_fingerprint(base), policy_fingerprint(target), delta
            )
            counters = _counters(obs.snapshot())
        assert patched is not None
        violations, counts, rescored = patched
        assert rescored == len(delta)
        assert counters["engine.batch.rebases"] == 1.0
        full = BatchViolationEngine(scenario.population).evaluate_decomposed(
            policy_fingerprint(target), dict(policy_columns(target))
        )
        assert np.array_equal(violations, full[0])
        assert np.array_equal(counts, full[1])

    def test_apply_column_delta_misses_without_the_base(self):
        scenario, policies = _widening_scenario(n_providers=10)
        target = policies[1]
        engine = BatchViolationEngine(scenario.population)
        # Never evaluated anything: no resident base, no cache to rebase
        # from — the protocol must fall back to a full task.
        missing_base = policy_fingerprint(policies[0])
        delta = plan_delta(
            column_plan(policies[0]), dict(policy_columns(target))
        )
        assert (
            engine.apply_column_delta(
                missing_base, policy_fingerprint(target), delta
            )
            is None
        )


# ---------------------------------------------------------------------------
# the supervised protocol: exact counters, bit-for-bit under everything
# ---------------------------------------------------------------------------


class TestSupervisedDeltaProtocol:
    def test_rescores_exactly_the_changed_columns(self):
        scenario, policies = _widening_scenario()
        with observed() as obs:
            with SupervisedExecutor(
                scenario.population, workers=2
            ) as executor:
                shards = len(executor.bounds)
                reports = [executor.evaluate(p) for p in policies]
            counters = _counters(obs.snapshot())
        expected_rescored, expected_delta_tasks = _expected_protocol_counters(
            policies, shards
        )
        # The path must actually exercise the protocol: some rounds ship
        # deltas, and the total rescore is far below full fan-out.
        assert expected_delta_tasks > 0
        assert counters["parallel.columns_rescored"] == expected_rescored
        assert counters["parallel.delta_tasks"] == expected_delta_tasks
        assert "parallel.base_replays" not in counters
        # And the numbers are the full fan-out's, bit for bit.
        with SupervisedExecutor(
            scenario.population, workers=2, column_delta=False
        ) as full_executor:
            for policy, report in zip(policies, reports):
                _assert_reports_identical(
                    report, full_executor.evaluate(policy)
                )

    def test_disabled_protocol_ships_no_deltas(self):
        scenario, policies = _widening_scenario(n_providers=20, rounds=2)
        with observed() as obs:
            with SupervisedExecutor(
                scenario.population, workers=2, column_delta=False
            ) as executor:
                for policy in policies:
                    executor.evaluate(policy)
            counters = _counters(obs.snapshot())
        assert "parallel.delta_tasks" not in counters

    def test_worker_kill_chaos_keeps_rounds_bit_for_bit(self):
        scenario, policies = _widening_scenario()
        serial = BatchViolationEngine(scenario.population)
        with observed() as obs:
            with SupervisedExecutor(
                scenario.population,
                workers=2,
                worker_faults=[
                    FaultSpec(site=TASK_FAULT_SITE, kind="kill", at=2)
                ],
                fault_worker_indices=[0],
                retry_base_delay=0.0,
            ) as executor:
                for policy in policies:
                    _assert_reports_identical(
                        executor.evaluate(policy), serial.evaluate(policy)
                    )
                assert executor.restarts == 1
            counters = _counters(obs.snapshot())
        # The respawned worker started with no resident bases, so the
        # sweeps after the kill still completed through full replays —
        # visible, not silent.
        assert counters["supervisor.restarts"] == 1.0

    def test_journal_replay_composes_with_the_delta_protocol(self):
        scenario, policies = _widening_scenario()
        base, target = policies[0], policies[1]
        serial = BatchViolationEngine(scenario.population)
        # First run records target's shards, exactly as the journal would.
        recorded: dict[tuple[int, int], tuple] = {}
        with SupervisedExecutor(scenario.population, workers=2) as executor:
            executor.evaluate(base)
            executor.evaluate_arrays_sharded(
                target,
                on_shard=lambda lo, hi, v, c: recorded.__setitem__(
                    (lo, hi), (list(map(float, v)), list(map(float, c)))
                ),
            )
        # Resume: one shard is journaled, the rest must go over the wire
        # as a delta against the freshly re-established base.
        replayed = dict(sorted(recorded.items())[:1])
        with observed() as obs:
            with SupervisedExecutor(
                scenario.population, workers=2
            ) as executor:
                executor.evaluate(base)
                violations, counts = executor.evaluate_arrays_sharded(
                    target, precomputed=replayed
                )
                report = executor.assemble(target.name, violations, counts)
            counters = _counters(obs.snapshot())
        _assert_reports_identical(report, serial.evaluate(target))
        assert counters["parallel.delta_tasks"] >= 1.0

    def test_pool_rebuild_warm_starts_the_plan(self):
        rng = random.Random(55)
        scenario, policies = _widening_scenario()
        base, target = policies[0], policies[1]
        added = [_random_provider(rng, 910)]
        with observed() as obs:
            with make_batch_engine(
                scenario.population, workers=2
            ) as engine:
                engine.evaluate(base)
                plan_before = engine.plan
                assert plan_before is not None
                engine.append(added)  # rebuilds the worker pool
                plan_after = engine.plan
                # The plan is population-independent: the rebuilt pool
                # inherits it instead of restarting from scratch.
                assert plan_after is not None
                assert plan_after.fingerprint == plan_before.fingerprint
                report = engine.evaluate(target)
            counters = _counters(obs.snapshot())
        assert counters["delta.pool_rebuilds"] >= 1.0
        expected = BatchViolationEngine(
            scenario.population.extended(added)
        ).evaluate(target)
        _assert_reports_identical(report, expected)

    def test_arrays_and_reports_share_one_cache(self):
        scenario, policies = _widening_scenario(n_providers=20, rounds=1)
        policy = policies[0]
        with observed() as obs:
            with SupervisedExecutor(
                scenario.population, workers=2
            ) as executor:
                report = executor.evaluate(policy)
                violations, counts = executor.evaluate_arrays(policy)
                # And the other direction: arrays first, report second.
                other = policies[-1]
                arrays_first, _ = executor.evaluate_arrays(other)
                assembled = executor.evaluate(other)
            counters = _counters(obs.snapshot())
        assert np.array_equal(violations, report.violations)
        assert np.array_equal(arrays_first, assembled.violations)
        assert counters["supervisor.cache_hits"] >= 2.0

    def test_degradation_serves_the_decomposition_serially(self):
        scenario, policies = _widening_scenario(n_providers=20, rounds=2)
        serial = BatchViolationEngine(scenario.population)
        with SupervisedExecutor(
            scenario.population,
            workers=2,
            worker_faults=[
                FaultSpec(site=TASK_FAULT_SITE, kind="kill", at=0, count=999)
            ],
            max_shard_retries=0,
            max_respawns=0,
            retry_base_delay=0.0,
        ) as executor:
            for policy in policies:
                _assert_reports_identical(
                    executor.evaluate(policy), serial.evaluate(policy)
                )
            assert len(executor.degradations) >= 1


# ---------------------------------------------------------------------------
# the opportunistic shard-pool variant: misses replay, results stay exact
# ---------------------------------------------------------------------------


class TestShardPoolDeltaProtocol:
    def test_widening_sequence_is_bit_for_bit_with_replays(self):
        scenario, policies = _widening_scenario()
        serial = BatchViolationEngine(scenario.population)
        with observed() as obs:
            with ShardExecutor(scenario.population, workers=2) as executor:
                shards = len(executor.bounds)
                for policy in policies:
                    _assert_reports_identical(
                        executor.evaluate(policy), serial.evaluate(policy)
                    )
            counters = _counters(obs.snapshot())
        # The pool's dispatch is untargeted, so deltas are attempted and
        # misses replay as full tasks — exactness never depends on hits.
        assert counters["parallel.delta_tasks"] >= shards
        assert counters["parallel.columns_rescored"] >= 1.0

    def test_disabled_protocol_matches_enabled(self):
        scenario, policies = _widening_scenario(n_providers=20, rounds=3)
        with ShardExecutor(scenario.population, workers=2) as enabled:
            with ShardExecutor(
                scenario.population, workers=2, column_delta=False
            ) as disabled:
                for policy in policies:
                    _assert_reports_identical(
                        enabled.evaluate(policy), disabled.evaluate(policy)
                    )

    def test_evaluate_arrays_served_from_the_report_cache(self):
        scenario, policies = _widening_scenario(n_providers=20, rounds=1)
        policy = policies[0]
        with observed() as obs:
            with ShardExecutor(scenario.population, workers=2) as executor:
                report = executor.evaluate(policy)
                violations, _ = executor.evaluate_arrays(policy)
            counters = _counters(obs.snapshot())
        assert np.array_equal(violations, report.violations)
        assert counters["parallel.cache_hits"] >= 1.0

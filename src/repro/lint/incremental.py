"""Incremental linting: fingerprint-keyed caching and provider fan-out.

A full :func:`~repro.lint.runner.lint_documents` run re-derives every
diagnostic from scratch.  For population-scale documents that is mostly
wasted work: the catalogue splits cleanly into

* a **global pass** — rules with scope ``global`` or ``mixed``, run once
  over the full document bundle, keeping every finding that is *not*
  attached to a named provider; and
* a **provider pass** — rules with scope ``provider`` or ``mixed``, run
  per provider over a singleton context (that provider's document plus
  the shared taxonomy/policy/candidate envelope), keeping exactly the
  findings attached to that provider.

Because provider-scoped rules derive each provider's findings from that
provider's document alone (see :data:`~repro.lint.registry.SCOPES`), the
merged, sorted union of the two passes equals the full run — property
``tests/lint/test_incremental.py`` holds this parity over every bundled
dataset.  The decomposition buys two things:

* **caching** — each pass is keyed by a SHA-256 fingerprint of its exact
  inputs (documents, config, select/ignore, and the
  :func:`~repro.lint.registry.rules_fingerprint` of the active
  catalogue, so plugin changes invalidate everything).  Editing one
  provider re-lints one provider.
* **parallelism** — cache-missed provider passes fan out across a
  ``fork`` process pool (``workers=0`` = one per CPU, ``1`` = serial),
  reusing the worker-count policy of :mod:`repro.perf.parallel`.  A
  worker death surfaces as
  :class:`~repro.exceptions.ParallelExecutionError` (CLI code
  ``PVL907``), matching the shard executor's failure model.

Cached diagnostics round-trip through JSON, so payload tuples come back
as lists; every renderer treats the two identically, which keeps cache
hits byte-stable with cache misses in all output formats.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
from collections.abc import Iterable, Mapping
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor

from ..exceptions import ParallelExecutionError, PrivacyModelError
from ..obs import active_observer
from ..policy_lang.ast import PolicyDocument
from ..policy_lang.population_doc import parse_population
from ..policy_lang.taxonomy_doc import taxonomy_to_dict
from ..storage import atomic_write_text
from ..taxonomy.builder import Taxonomy
from .diagnostics import Diagnostic, sort_key
from .registry import (
    LintConfig,
    LintContext,
    run_rules,
    rules_fingerprint,
)
from .report import LintReport
from .runner import build_context

#: Scopes run once over the full bundle / once per provider.
GLOBAL_SCOPES = ("global", "mixed")
PROVIDER_SCOPES = ("provider", "mixed")

#: Cache file format version; bump on any incompatible layout change.
CACHE_VERSION = 1


def fingerprint(obj: object) -> str:
    """SHA-256 of *obj*'s canonical JSON form.

    Canonical means key-sorted with minimal separators, so two mappings
    with the same content fingerprint identically regardless of
    insertion order.  Non-JSON values fall back to ``str``.
    """
    payload = json.dumps(
        obj, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class LintCache:
    """A fingerprint-keyed store of diagnostic lists, persisted as JSON.

    Tolerant by construction: a missing, unreadable, corrupt, or
    wrong-version cache file loads as empty (a cold cache is always
    correct — it only costs recomputation).  :meth:`save` writes
    atomically via :func:`~repro.storage.atomic_write_text`, so a
    crashed run can never leave a torn file behind.
    """

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self.path = os.fspath(path) if path is not None else None
        self._entries: dict[str, list[dict]] = {}
        self.hits = 0
        self.misses = 0
        if self.path is not None:
            self._entries = self._load(self.path)

    @staticmethod
    def _load(path: str) -> dict[str, list[dict]]:
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
            if (
                isinstance(data, dict)
                and data.get("version") == CACHE_VERSION
                and isinstance(data.get("entries"), dict)
            ):
                return dict(data["entries"])
        except (OSError, ValueError):
            pass
        return {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> tuple[Diagnostic, ...] | None:
        """The cached diagnostics under *key*, or None on a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return tuple(Diagnostic.from_dict(raw) for raw in entry)

    def put(self, key: str, diagnostics: Iterable[Diagnostic]) -> None:
        """Record *diagnostics* under *key* (JSON-safe dict forms)."""
        self._entries[key] = [d.as_dict() for d in diagnostics]

    def save(self, path: str | os.PathLike | None = None) -> None:
        """Persist the cache atomically to *path* (default: load path)."""
        target = os.fspath(path) if path is not None else self.path
        if target is None:
            raise ValueError("LintCache has no path to save to")
        atomic_write_text(
            target,
            json.dumps(
                {"version": CACHE_VERSION, "entries": self._entries},
                sort_keys=True,
            ),
        )


def _document_digest(raw: Mapping | PolicyDocument | None) -> str:
    if raw is None:
        return "absent"
    if isinstance(raw, PolicyDocument):
        return fingerprint(raw.as_dict())
    return fingerprint(raw)


def _envelope_digest(
    taxonomy: Taxonomy,
    policy: Mapping | PolicyDocument | None,
    candidate: Mapping | PolicyDocument | None,
    config: LintConfig,
    select: Iterable[str] | None,
    ignore: Iterable[str] | None,
) -> str:
    """Everything every pass depends on besides the population."""
    return fingerprint(
        {
            "taxonomy": taxonomy_to_dict(taxonomy),
            "policy": _document_digest(policy),
            "candidate": _document_digest(candidate),
            "config": {
                "alpha": config.alpha,
                "utility": config.utility,
                "max_extra_utility": config.max_extra_utility,
            },
            "select": sorted(select) if select is not None else None,
            "ignore": sorted(ignore) if ignore is not None else None,
            "rules": rules_fingerprint(),
        }
    )


def _is_provider_diagnostic(diagnostic: Diagnostic) -> bool:
    """Whether a finding belongs to one named provider's document."""
    location = diagnostic.location
    return location.document == "population" and location.name is not None


def _provider_pass(
    context: LintContext,
    taxonomy: Taxonomy,
    entry: Mapping,
    pref_doc,
    envelope_sensitivities: Mapping[str, float],
    population_lowered: bool,
    select: Iterable[str] | None,
    ignore: Iterable[str] | None,
) -> tuple[Diagnostic, ...]:
    """Run the provider-scope rules over one provider's singleton context.

    When the full population failed semantic lowering, the singleton is
    denied a lowered population too — otherwise per-provider passes
    could emit model-layer findings the full run (whose ``population``
    is ``None``) never would.
    """
    population = None
    if population_lowered:
        try:
            population = parse_population(
                {
                    "attribute_sensitivities": dict(envelope_sensitivities),
                    "providers": [entry],
                },
                taxonomy,
            )
        except PrivacyModelError:  # pragma: no cover - full doc lowered
            population = None
    singleton = dataclasses.replace(
        context, preference_docs=(pref_doc,), population=population
    )
    diagnostics = run_rules(
        singleton, select=select, ignore=ignore, scopes=PROVIDER_SCOPES
    )
    return tuple(d for d in diagnostics if _is_provider_diagnostic(d))


# Populated in the parent immediately before the fork pool spins up;
# forked workers inherit it. Holds unpicklable shared state (the full
# LintContext and Taxonomy) so task payloads stay small.
_WORKER_STATE: dict | None = None


def _worker_provider_pass(task: tuple[int, Mapping]) -> tuple[int, list[dict]]:
    state = _WORKER_STATE
    assert state is not None, "worker forked before state was published"
    index, entry = task
    diagnostics = _provider_pass(
        state["context"],
        state["taxonomy"],
        entry,
        state["pref_docs"][index],
        state["envelope_sensitivities"],
        state["population_lowered"],
        state["select"],
        state["ignore"],
    )
    return index, [d.as_dict() for d in diagnostics]


def incremental_lint(
    taxonomy: Taxonomy,
    *,
    policy: Mapping | PolicyDocument | None = None,
    population: Mapping | None = None,
    candidate: Mapping | PolicyDocument | None = None,
    config: LintConfig | None = None,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    cache: LintCache | None = None,
    workers: int = 1,
) -> LintReport:
    """Lint the documents incrementally; equals the full-catalogue run.

    Same signature and output as
    :func:`~repro.lint.runner.lint_documents`, plus:

    cache:
        A :class:`LintCache`.  Passes whose input fingerprints are
        already recorded are served from it; fresh results are recorded
        back (call :meth:`LintCache.save` to persist).
    workers:
        Process fan-out for cache-missed provider passes.  ``1`` (the
        default) runs serially; ``0`` means one worker per CPU.  The
        global pass always runs in the parent.
    """
    from ..perf.parallel import resolve_workers  # heavy import kept lazy

    config = config if config is not None else LintConfig()
    worker_count = resolve_workers(workers)
    context = build_context(
        taxonomy,
        policy=policy,
        population=population,
        candidate=candidate,
        config=config,
    )
    obs = active_observer()
    envelope = _envelope_digest(
        taxonomy, policy, candidate, config, select, ignore
    )
    diagnostics: list[Diagnostic] = []

    # Global pass: everything not attached to a named provider.
    global_key = f"global:{envelope}:{_document_digest(population)}"
    cached = cache.get(global_key) if cache is not None else None
    if cached is None:
        fresh = tuple(
            d
            for d in run_rules(
                context, select=select, ignore=ignore, scopes=GLOBAL_SCOPES
            )
            if not _is_provider_diagnostic(d)
        )
        if cache is not None:
            cache.put(global_key, fresh)
        diagnostics.extend(fresh)
    else:
        diagnostics.extend(cached)

    # Provider passes: one singleton context per provider document.
    entries: list[Mapping] = []
    if population is not None:
        entries = list(population.get("providers", []))
    population_lowered = context.population is not None
    envelope_sensitivities = context.attribute_sensitivities
    pending: list[tuple[int, Mapping, str]] = []
    resolved: dict[int, tuple[Diagnostic, ...]] = {}
    for index, entry in enumerate(entries):
        key = (
            f"provider:{envelope}:{int(population_lowered)}:"
            f"{fingerprint(dict(entry))}:"
            f"{fingerprint(dict(envelope_sensitivities))}"
        )
        cached = cache.get(key) if cache is not None else None
        if cached is None:
            pending.append((index, entry, key))
        else:
            resolved[index] = cached

    if pending and worker_count > 1:
        _fan_out_providers(
            pending,
            resolved,
            context=context,
            taxonomy=taxonomy,
            population_lowered=population_lowered,
            envelope_sensitivities=envelope_sensitivities,
            select=select,
            ignore=ignore,
            workers=worker_count,
            cache=cache,
        )
    else:
        for index, entry, key in pending:
            fresh = _provider_pass(
                context,
                taxonomy,
                entry,
                context.preference_docs[index],
                envelope_sensitivities,
                population_lowered,
                select,
                ignore,
            )
            if cache is not None:
                cache.put(key, fresh)
            resolved[index] = fresh

    for index in range(len(entries)):
        diagnostics.extend(resolved[index])

    if obs is not None:
        obs.inc("lint.incremental.runs")
        obs.inc("lint.incremental.providers", len(entries))
        if cache is not None:
            obs.inc("lint.cache.hits", cache.hits)
            obs.inc("lint.cache.misses", cache.misses)
    return LintReport(tuple(sorted(diagnostics, key=sort_key)))


def _fan_out_providers(
    pending: list[tuple[int, Mapping, str]],
    resolved: dict[int, tuple[Diagnostic, ...]],
    *,
    context: LintContext,
    taxonomy: Taxonomy,
    population_lowered: bool,
    envelope_sensitivities: Mapping[str, float],
    select: Iterable[str] | None,
    ignore: Iterable[str] | None,
    workers: int,
    cache: LintCache | None,
) -> None:
    """Run cache-missed provider passes across a fork process pool."""
    global _WORKER_STATE
    try:
        mp_context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platform
        for index, entry, key in pending:
            fresh = _provider_pass(
                context,
                taxonomy,
                entry,
                context.preference_docs[index],
                envelope_sensitivities,
                population_lowered,
                select,
                ignore,
            )
            if cache is not None:
                cache.put(key, fresh)
            resolved[index] = fresh
        return
    _WORKER_STATE = {
        "context": context,
        "taxonomy": taxonomy,
        "pref_docs": {
            index: context.preference_docs[index] for index, _, _ in pending
        },
        "envelope_sensitivities": envelope_sensitivities,
        "population_lowered": population_lowered,
        "select": select,
        "ignore": ignore,
    }
    keys = {index: key for index, _, key in pending}
    try:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(pending)), mp_context=mp_context
        ) as pool:
            try:
                for index, raw_diagnostics in pool.map(
                    _worker_provider_pass,
                    [(index, entry) for index, entry, _ in pending],
                ):
                    fresh = tuple(
                        Diagnostic.from_dict(raw) for raw in raw_diagnostics
                    )
                    if cache is not None:
                        cache.put(keys[index], fresh)
                    resolved[index] = fresh
            except BrokenExecutor as exc:
                raise ParallelExecutionError(
                    "a lint worker process died before finishing its "
                    "provider pass"
                ) from exc
    finally:
        _WORKER_STATE = None

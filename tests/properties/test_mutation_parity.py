"""Parity: the incremental engine must equal a fresh compile, bit for bit.

The :class:`~repro.perf.delta.MutableBatchEngine` mutates its compiled
population in place — removals tombstone rows, appends extend the
stores, edits splice entries — instead of recompiling.  These tests
drive randomized mutation sequences (add / remove / edit, interleaved
with evaluations) and assert that every report is **bit-for-bit
identical** to a fresh compile-and-evaluate of the population the
mutations produce.  As in :mod:`tests.properties.test_batch_parity`,
the corpus draws every continuous quantity as a dyadic rational, so any
discrepancy is a logic bug, never rounding noise — but the contract is
stronger than order-independence: survivors keep their original rows
and appends land at the end, so the incremental engine performs the
*same* floating-point additions in the *same* order as the fresh
compile it must match.

Serial engines run the full corpus; worker pools (expensive to fork)
run a seeded subset.  Evaluations are issued both before mutations
(populating every cache, so the delta paths must patch or mask cached
state) and after a cache-clearing pattern (uncached), per the issue's
acceptance grid.
"""

from __future__ import annotations

import dataclasses
import random

import numpy as np
import pytest

from repro.core import Population, PreferenceEntry, ProviderPreferences
from repro.perf import BatchViolationEngine, make_batch_engine

from tests.properties.test_batch_parity import (
    _random_policy,
    _random_population,
    _random_provider,
)

N_SCENARIOS = 300  # the issue's acceptance floor for mutation sequences
N_PARALLEL_SCENARIOS = 6
MUTATIONS_PER_SCENARIO = 8


def _assert_reports_identical(actual, expected) -> None:
    assert actual.policy_name == expected.policy_name
    assert actual.n_providers == expected.n_providers
    assert actual.n_violated == expected.n_violated
    assert actual.n_defaulted == expected.n_defaulted
    assert actual.violation_probability == expected.violation_probability
    assert actual.default_probability == expected.default_probability
    assert actual.total_violations == expected.total_violations
    assert actual.provider_ids == expected.provider_ids
    assert actual.segments == expected.segments
    assert np.array_equal(actual.violations, expected.violations)
    assert np.array_equal(actual.thresholds, expected.thresholds)
    assert np.array_equal(actual.violated, expected.violated)
    assert np.array_equal(actual.defaulted, expected.defaulted)


def _random_edit(rng: random.Random, population: Population):
    """A replacement provider for a random member, with fresh everything
    except the id — preferences, supplied attributes, sensitivities,
    threshold, and segment all change."""
    target = rng.choice(population.providers)
    donor = _random_provider(rng, 0)
    preferences = ProviderPreferences(
        target.provider_id,
        [
            PreferenceEntry(
                provider_id=target.provider_id,
                attribute=entry.attribute,
                tuple=entry.tuple,
            )
            for entry in donor.preferences
        ],
        attributes_provided=donor.preferences.attributes_provided,
    )
    return dataclasses.replace(donor, preferences=preferences)


def _apply_random_mutation(
    rng: random.Random, engine, population: Population, next_id: int
) -> tuple[Population, int]:
    """One random add/remove/edit applied to both the engine and the
    plain-Population mirror the fresh-compile oracle is built from."""
    roll = rng.random()
    if roll < 0.35 and len(population) > 1:
        count = rng.randrange(1, min(3, len(population)))
        victims = [
            p.provider_id for p in rng.sample(population.providers, count)
        ]
        engine.remove(victims)
        return population.without(victims), next_id
    if roll < 0.65:
        added = [
            _random_provider(rng, next_id + offset)
            for offset in range(rng.randrange(1, 3))
        ]
        engine.append(added)
        return population.extended(added), next_id + len(added)
    replacement = _random_edit(rng, population)
    engine.update([replacement])
    return population.updated([replacement]), next_id


def _drive(seed: int, *, workers: int) -> None:
    rng = random.Random(seed)
    population = _random_population(rng)
    policies = [
        _random_policy(rng, name=f"mut-{seed}-{i}") for i in range(3)
    ]
    cached = rng.random() < 0.5  # half the corpus pre-populates caches
    next_id = 10_000
    engine = make_batch_engine(population, workers=workers)
    try:
        if cached:
            for policy in policies:
                engine.evaluate(policy)
        for _ in range(rng.randrange(1, MUTATIONS_PER_SCENARIO + 1)):
            population, next_id = _apply_random_mutation(
                rng, engine, population, next_id
            )
            if len(population) == 0:
                break
            if rng.random() < 0.5:
                # Interleaved evaluation: the next mutation must patch
                # (serial) or mask (parallel) this freshly cached state.
                policy = rng.choice(policies)
                report = engine.evaluate(policy)
                expected = BatchViolationEngine(population).evaluate(policy)
                _assert_reports_identical(report, expected)
        if len(population) == 0:
            return
        fresh = BatchViolationEngine(population)
        for policy in policies:
            # Evaluated twice: once live, once through the report cache.
            for _ in range(2):
                _assert_reports_identical(
                    engine.evaluate(policy), fresh.evaluate(policy)
                )
        policy = policies[0]
        certificate = engine.certify(policy, 0.5)
        expected_cert = fresh.certify(policy, 0.5)
        assert (
            certificate.violation_probability
            == expected_cert.violation_probability
        )
        assert certificate.satisfied == expected_cert.satisfied
        assert set(certificate.violated_providers) == set(
            expected_cert.violated_providers
        )
    finally:
        engine.close()


@pytest.mark.parametrize("seed", range(N_SCENARIOS))
def test_mutation_sequence_parity_serial(seed):
    _drive(seed, workers=1)


@pytest.mark.parametrize("seed", range(N_PARALLEL_SCENARIOS))
def test_mutation_sequence_parity_workers(seed):
    _drive(seed, workers=2)

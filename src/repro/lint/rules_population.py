"""Population-layer rules (``PVL210``-``PVL214``).

These rules reason about the policy/population pair through the interval
abstraction of :mod:`repro.lint.intervals` and through pure lattice
geometry: clauses that can never be consulted, preferences the policy
can never violate, policies that are vacuous against the population, and
deployments whose alpha-PPDB or default verdicts are already decided
statically.  ``PVL201``/``PVL202`` are taken by the economics layer, so
the population catalogue starts at ``PVL210``.

Scope notes (consumed by :mod:`repro.lint.incremental`): ``PVL210``,
``PVL211``, and ``PVL214`` are *provider*-scoped — each provider's
findings depend only on that provider's document (plus the shared
taxonomy/policy envelope), which is what makes per-provider caching and
fan-out sound.  ``PVL212`` and ``PVL213`` are population aggregates and
stay global.
"""

from __future__ import annotations

from collections.abc import Callable

from .diagnostics import Severity, SourceLocation
from .intervals import interval_analysis
from .registry import Layer, LintContext, rule


@rule(
    "PVL210",
    title="dead preference clause",
    severity=Severity.INFO,
    layer=Layer.POPULATION,
    scope="provider",
    description=(
        "A preference names a purpose the policy never uses on that "
        "attribute: the clause is unreachable (Eq. 13 comparability "
        "requires matching purposes) and expresses no protection."
    ),
)
def check_dead_preference_clause(
    ctx: LintContext, emit: Callable[..., None]
) -> None:
    if ctx.policy is None:
        return
    purposes_by_attribute: dict[str, set[str]] = {}
    for entry in ctx.policy.entries:
        purposes_by_attribute.setdefault(entry.attribute, set()).add(
            entry.purpose
        )
    for location, spec, _document in ctx.iter_preference_specs():
        used = purposes_by_attribute.get(spec.attribute)
        if used is None:
            continue  # attribute never collected: PVL106's business
        if spec.purpose in used:
            continue
        emit(
            SourceLocation(
                "population",
                name=location.name,
                index=location.index,
                field="purpose",
            ),
            f"preference purpose {spec.purpose!r} is dead: the policy "
            f"collects {spec.attribute!r} only under "
            f"{sorted(used)}, so this clause is never comparable",
            attribute=spec.attribute,
            purpose=spec.purpose,
            policy_purposes=sorted(used),
        )


@rule(
    "PVL211",
    title="subsumed preference",
    severity=Severity.INFO,
    layer=Layer.POPULATION,
    scope="provider",
    description=(
        "A preference strictly dominates every comparable policy rule: "
        "the provider permits strictly more than the house ever takes, "
        "so the clause can never be violated and adds no constraint."
    ),
)
def check_subsumed_preference(
    ctx: LintContext, emit: Callable[..., None]
) -> None:
    if ctx.policy is None:
        return
    for location, spec, _document in ctx.iter_preference_specs():
        comparable = [
            entry.tuple
            for entry in ctx.policy.for_attribute(spec.attribute)
            if entry.purpose == spec.purpose
        ]
        if not comparable:
            continue
        try:
            preference = ctx.taxonomy.tuple(
                spec.purpose, spec.visibility, spec.granularity, spec.retention
            )
        except Exception:
            continue  # unresolvable specs are PVL001/PVL002's business
        if all(
            preference != policy_tuple and preference.dominates(policy_tuple)
            for policy_tuple in comparable
        ):
            emit(
                SourceLocation(
                    "population", name=location.name, index=location.index
                ),
                f"preference for {spec.attribute!r} @ {spec.purpose!r} "
                f"strictly dominates every comparable policy rule; it can "
                f"never be violated",
                attribute=spec.attribute,
                purpose=spec.purpose,
                n_policy_rules=len(comparable),
            )


@rule(
    "PVL212",
    title="vacuous policy",
    severity=Severity.INFO,
    layer=Layer.POPULATION,
    description=(
        "The static severity interval is [0, 0] for every provider: the "
        "policy cannot violate anyone in this population, so every "
        "alpha-PPDB claim it supports is vacuously true."
    ),
)
def check_vacuous_policy(ctx: LintContext, emit: Callable[..., None]) -> None:
    if (
        ctx.policy is None
        or ctx.population is None
        or not len(ctx.policy)
        or not len(ctx.population)
    ):
        return
    intervals = interval_analysis(ctx.policy, ctx.population)
    if any(not bounds.provably_safe for bounds in intervals):
        return
    emit(
        SourceLocation("policy", name=ctx.policy.name),
        f"policy is vacuous against this population: no clause geometry "
        f"can violate any of the {intervals.n_providers} provider(s) "
        f"(house severity bounds are [0, 0])",
        n_providers=intervals.n_providers,
        house_lower=intervals.house.lower,
        house_upper=intervals.house.upper,
    )


@rule(
    "PVL213",
    title="statically certifiable population",
    severity=Severity.INFO,
    layer=Layer.POPULATION,
    description=(
        "Definition 3 holds statically: the exact violated-provider "
        "fraction derived from the severity intervals is within alpha, "
        "so the deployment is alpha-PPDB-certifiable without running "
        "the engine.  The positive counterpart of PVL110."
    ),
)
def check_statically_certifiable(
    ctx: LintContext, emit: Callable[..., None]
) -> None:
    if (
        ctx.config.alpha is None
        or ctx.policy is None
        or ctx.population is None
        or not len(ctx.population)
    ):
        return
    intervals = interval_analysis(ctx.policy, ctx.population)
    certificate = intervals.certificate(ctx.config.alpha)
    if not certificate.satisfied:
        return  # the failing direction is PVL110's business
    emit(
        SourceLocation("policy", name=ctx.policy.name),
        f"alpha-PPDB holds statically: P(W) = "
        f"{certificate.violation_probability:.4f} <= alpha = "
        f"{certificate.alpha:g} "
        f"({certificate.n_providers - len(certificate.violated_providers)}"
        f"/{certificate.n_providers} providers provably safe of violation)",
        alpha=certificate.alpha,
        violation_probability=certificate.violation_probability,
        margin=certificate.margin,
        n_providers=certificate.n_providers,
        house_lower=intervals.house.lower,
        house_upper=intervals.house.upper,
    )


@rule(
    "PVL214",
    title="statically inevitable default",
    severity=Severity.WARNING,
    layer=Layer.POPULATION,
    scope="provider",
    description=(
        "A provider's static severity already exceeds their tolerance "
        "v_i: they default under this policy no matter how the "
        "population-level weights are calibrated (Definition 4 decided "
        "from the documents alone)."
    ),
)
def check_inevitable_default(
    ctx: LintContext, emit: Callable[..., None]
) -> None:
    if ctx.policy is None or ctx.population is None or not len(ctx.population):
        return
    # Provider-exact bounds (point intervals): each provider's verdict
    # depends only on their own document, which keeps this rule's output
    # identical between full runs and per-provider incremental passes.
    intervals = interval_analysis(
        ctx.policy, ctx.population, weight_bounds="provider"
    )
    for bounds in intervals:
        if not bounds.must_default:
            continue
        relation = ">" if bounds.strict else ">="
        emit(
            SourceLocation("population", name=str(bounds.provider_id)),
            f"default is statically inevitable: Violation_i = "
            f"{bounds.interval.lower:g} {relation} threshold "
            f"{bounds.threshold:g}",
            severity_lower=bounds.interval.lower,
            severity_upper=bounds.interval.upper,
            threshold=bounds.threshold,
            strict=bounds.strict,
        )

"""Parsed-document dataclasses for the policy language.

A document is a plain nested structure (safe to serialise as JSON).  The
AST layer sits between raw dicts and the core model: the parser produces
AST nodes from dicts, the validator checks them against a taxonomy, and
``to_model`` methods lower them onto the core types.

Document shapes
---------------
Policy document::

    {
      "name": "clinic-baseline",
      "rules": [
        {"attribute": "diagnosis",
         "purpose": "treatment",
         "visibility": "clinic",      # level name or integer rank
         "granularity": "specific",
         "retention": "year"},
        ...
      ]
    }

Preference document::

    {
      "provider": "alice",
      "attributes_provided": ["diagnosis", "age"],   # optional
      "preferences": [ {tuple spec as above, minus "attribute" key plus it} ]
    }

Sensitivity document::

    {
      "attributes": {"diagnosis": 5, "age": 1},
      "providers": {
        "alice": {"diagnosis": {"value": 2, "visibility": 1,
                                 "granularity": 3, "retention": 1}}
      }
    }
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping

from .._validation import check_non_empty_str
from ..exceptions import PolicyDocumentError


@dataclass(frozen=True, slots=True)
class TupleSpec:
    """One rule/preference line: attribute + the four dimension values.

    Ordered values may be level names (strings) or integer ranks; they are
    resolved against a taxonomy at lowering time.
    """

    attribute: str
    purpose: str
    visibility: str | int
    granularity: str | int
    retention: str | int

    def __post_init__(self) -> None:
        check_non_empty_str(self.attribute, "attribute")
        check_non_empty_str(self.purpose, "purpose")
        for name in ("visibility", "granularity", "retention"):
            value = getattr(self, name)
            if not isinstance(value, (str, int)) or isinstance(value, bool):
                raise PolicyDocumentError(
                    f"{name} must be a level name or integer rank, got {value!r}"
                )

    def as_dict(self) -> dict[str, str | int]:
        """The spec as a plain dict (the document form)."""
        return {
            "attribute": self.attribute,
            "purpose": self.purpose,
            "visibility": self.visibility,
            "granularity": self.granularity,
            "retention": self.retention,
        }


@dataclass(frozen=True)
class PolicyDocument:
    """A parsed house-policy document."""

    name: str
    rules: tuple[TupleSpec, ...]

    def __post_init__(self) -> None:
        check_non_empty_str(self.name, "name")

    def as_dict(self) -> dict:
        """The document as a plain dict."""
        return {
            "name": self.name,
            "rules": [rule.as_dict() for rule in self.rules],
        }


@dataclass(frozen=True)
class PreferenceDocument:
    """A parsed provider-preference document."""

    provider: str
    preferences: tuple[TupleSpec, ...]
    attributes_provided: tuple[str, ...] | None = None

    def __post_init__(self) -> None:
        check_non_empty_str(self.provider, "provider")

    def as_dict(self) -> dict:
        """The document as a plain dict."""
        result: dict = {
            "provider": self.provider,
            "preferences": [spec.as_dict() for spec in self.preferences],
        }
        if self.attributes_provided is not None:
            result["attributes_provided"] = list(self.attributes_provided)
        return result


@dataclass(frozen=True)
class SensitivityDocument:
    """A parsed sensitivity document (``Sigma`` plus per-provider ``sigma``)."""

    attributes: Mapping[str, float] = field(default_factory=dict)
    providers: Mapping[str, Mapping[str, Mapping[str, float]]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        object.__setattr__(self, "attributes", dict(self.attributes))
        object.__setattr__(
            self,
            "providers",
            {
                provider: {attr: dict(rec) for attr, rec in per_attr.items()}
                for provider, per_attr in self.providers.items()
            },
        )

    def as_dict(self) -> dict:
        """The document as a plain dict."""
        return {
            "attributes": dict(self.attributes),
            "providers": {
                provider: {attr: dict(rec) for attr, rec in per_attr.items()}
                for provider, per_attr in self.providers.items()
            },
        }

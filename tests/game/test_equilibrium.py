"""Unit tests for the iterated widening game and best response."""

from __future__ import annotations

import pytest

from repro.game import (
    CautiousHouse,
    FixedWidening,
    GreedyWidening,
    best_response,
    play_widening_game,
)
from repro.simulation import WideningStep


@pytest.fixture(scope="module")
def scenario():
    from repro.datasets import crm_scenario

    return crm_scenario(100, seed=3)


def _play(scenario, strategy):
    return play_widening_game(
        scenario.population,
        scenario.policy,
        scenario.taxonomy,
        strategy,
        per_provider_utility=scenario.per_provider_utility,
        extra_utility_per_round=scenario.extra_utility_per_step,
    )


class TestGamePlay:
    def test_fixed_strategy_round_count(self, scenario):
        trace = _play(scenario, FixedWidening(WideningStep.uniform(1), 3))
        assert [r.round_index for r in trace.rounds] == [0, 1, 2, 3]
        assert trace.stopped_by_strategy

    def test_round_zero_uses_base_policy(self, scenario):
        trace = _play(scenario, FixedWidening(WideningStep.uniform(1), 1))
        assert trace.rounds[0].policy_name.endswith("@g0")

    def test_population_chains(self, scenario):
        trace = _play(scenario, FixedWidening(WideningStep.uniform(1), 4))
        for previous, current in zip(trace.rounds, trace.rounds[1:]):
            assert current.n_start == previous.n_remaining

    def test_greedy_stops_after_first_drop(self, scenario):
        trace = _play(scenario, GreedyWidening(WideningStep.uniform(1)))
        utilities = [r.utility for r in trace.rounds]
        # Every round but the last must be >= its predecessor; the last is
        # the overshoot that triggered the stop (or the cap).
        for before, after in zip(utilities[:-2], utilities[1:-1]):
            assert after >= before
        assert trace.stopped_by_strategy

    def test_cautious_respects_budget(self, scenario):
        trace = _play(
            scenario,
            CautiousHouse(WideningStep.uniform(1), attrition_budget=0.1),
        )
        initial = trace.rounds[0].n_start
        # Every round the strategy *chose to continue from* was within
        # budget; the final round may overshoot (that is why it stopped).
        for game_round in trace.rounds[:-1]:
            lost = initial - game_round.n_remaining
            assert lost / initial <= 0.1 or game_round is trace.rounds[-1]

    def test_total_defaults(self, scenario):
        trace = _play(scenario, FixedWidening(WideningStep.uniform(1), 5))
        assert trace.total_defaults() == (
            trace.rounds[0].n_start - trace.rounds[-1].n_remaining
        )

    def test_peak_and_equilibrium_rounds(self, scenario):
        trace = _play(scenario, FixedWidening(WideningStep.uniform(1), 6))
        peak = trace.peak_utility_round()
        assert peak.utility == max(r.utility for r in trace.rounds)
        equilibrium = trace.equilibrium_round()
        assert equilibrium.utility == peak.utility


class TestBestResponse:
    def test_best_response_maximizes_sweep(self, scenario):
        response = best_response(
            scenario.population,
            scenario.policy,
            scenario.taxonomy,
            max_steps=6,
            per_provider_utility=scenario.per_provider_utility,
            extra_utility_per_step=scenario.extra_utility_per_step,
        )
        assert response.row.utility_future == max(
            row.utility_future for row in response.sweep.rows
        )

    def test_best_response_vs_greedy_myopia(self, scenario):
        """Full information weakly beats myopic play."""
        response = best_response(
            scenario.population,
            scenario.policy,
            scenario.taxonomy,
            max_steps=6,
            per_provider_utility=scenario.per_provider_utility,
            extra_utility_per_step=scenario.extra_utility_per_step,
        )
        trace = _play(scenario, GreedyWidening(WideningStep.uniform(1)))
        assert response.row.utility_future >= trace.equilibrium_round().utility

    def test_stays_at_base_when_widening_never_pays(self, scenario):
        response = best_response(
            scenario.population,
            scenario.policy,
            scenario.taxonomy,
            max_steps=4,
            per_provider_utility=scenario.per_provider_utility,
            extra_utility_per_step=0.0,  # widening yields nothing
        )
        assert response.stays_at_base

    def test_str_rendering(self, scenario):
        response = best_response(
            scenario.population, scenario.policy, scenario.taxonomy, max_steps=2
        )
        assert "best response" in str(response)

"""Unit tests for the purpose registry and lattice extension."""

from __future__ import annotations

import pytest

from repro.core.purpose import PurposeLattice, PurposeRegistry, chain
from repro.exceptions import UnknownPurposeError, ValidationError


class TestPurposeRegistry:
    def test_contains_and_len(self):
        registry = PurposeRegistry(["billing", "research"])
        assert "billing" in registry
        assert "marketing" not in registry
        assert len(registry) == 2

    def test_iteration_is_sorted(self):
        registry = PurposeRegistry(["z", "a", "m"])
        assert list(registry) == ["a", "m", "z"]

    def test_validate_returns_purpose(self):
        registry = PurposeRegistry(["billing"])
        assert registry.validate("billing") == "billing"

    def test_validate_unknown_raises(self):
        registry = PurposeRegistry(["billing"])
        with pytest.raises(UnknownPurposeError):
            registry.validate("resale")

    def test_empty_registry_rejected(self):
        with pytest.raises(ValidationError):
            PurposeRegistry([])

    def test_duplicates_rejected(self):
        with pytest.raises(ValidationError):
            PurposeRegistry(["a", "a"])

    def test_blank_purpose_rejected(self):
        with pytest.raises(ValidationError):
            PurposeRegistry(["  "])


class TestPurposeLattice:
    @pytest.fixture()
    def diamond(self) -> PurposeLattice:
        # single -> {billing, research} -> any
        return PurposeLattice(
            ["single", "billing", "research", "any"],
            [
                ("single", "billing"),
                ("single", "research"),
                ("billing", "any"),
                ("research", "any"),
            ],
        )

    def test_leq_reflexive(self, diamond):
        for purpose in diamond.purposes:
            assert diamond.leq(purpose, purpose)

    def test_leq_transitive_through_closure(self, diamond):
        assert diamond.leq("single", "any")

    def test_incomparable_siblings(self, diamond):
        assert not diamond.leq("billing", "research")
        assert not diamond.leq("research", "billing")
        assert not diamond.comparable("billing", "research")

    def test_diamond_is_not_chain(self, diamond):
        assert not diamond.is_chain()

    def test_total_order_on_non_chain_raises(self, diamond):
        with pytest.raises(ValidationError):
            diamond.total_order()

    def test_unknown_purpose_in_leq_raises(self, diamond):
        with pytest.raises(UnknownPurposeError):
            diamond.leq("single", "resale")

    def test_unknown_purpose_in_edges_raises(self):
        with pytest.raises(UnknownPurposeError):
            PurposeLattice(["a"], [("a", "b")])

    def test_self_loop_rejected(self):
        with pytest.raises(ValidationError):
            PurposeLattice(["a"], [("a", "a")])

    def test_cycle_rejected(self):
        with pytest.raises(ValidationError):
            PurposeLattice(["a", "b"], [("a", "b"), ("b", "a")])

    def test_registry_view(self, diamond):
        registry = diamond.registry()
        assert set(registry.purposes) == set(diamond.purposes)


class TestChain:
    def test_chain_is_chain(self):
        lattice = chain(["none", "single", "any"])
        assert lattice.is_chain()

    def test_total_order_ranks_narrowest_zero(self):
        lattice = chain(["none", "single", "any"])
        order = lattice.total_order()
        assert order == {"none": 0, "single": 1, "any": 2}

    def test_chain_leq_follows_sequence(self):
        lattice = chain(["a", "b", "c"])
        assert lattice.leq("a", "c")
        assert not lattice.leq("c", "a")

    def test_singleton_chain(self):
        lattice = chain(["only"])
        assert lattice.is_chain()
        assert lattice.total_order() == {"only": 0}

"""Unit tests for the diagnostic primitives."""

from __future__ import annotations

import pytest

from repro.exceptions import LintConfigurationError
from repro.lint import Diagnostic, Severity, SourceLocation
from repro.lint.diagnostics import sort_key


class TestSeverity:
    def test_total_order(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert Severity.ERROR >= Severity.WARNING >= Severity.INFO
        assert not Severity.ERROR < Severity.INFO

    def test_from_name(self):
        assert Severity.from_name("error") is Severity.ERROR
        assert Severity.from_name(" WARNING ") is Severity.WARNING

    def test_from_name_unknown_raises(self):
        with pytest.raises(LintConfigurationError):
            Severity.from_name("fatal")


class TestSourceLocation:
    def test_policy_describe_matches_legacy_context(self):
        loc = SourceLocation("policy", name="base", index=2)
        assert loc.describe() == "policy 'base' rule 2"

    def test_population_describe_matches_legacy_context(self):
        loc = SourceLocation("population", name="alice", index=0)
        assert loc.describe() == "preferences of 'alice' entry 0"

    def test_taxonomy_and_candidate_describe(self):
        assert SourceLocation("taxonomy").describe() == "taxonomy"
        assert (
            SourceLocation("candidate", name="wider", index=1).describe()
            == "candidate 'wider' rule 1"
        )

    def test_unknown_document_kind_rejected(self):
        with pytest.raises(LintConfigurationError):
            SourceLocation("sensitivities")


class TestDiagnostic:
    def _diag(self, **overrides):
        values = dict(
            code="PVL001",
            severity=Severity.ERROR,
            message="unknown purpose 'x'",
            location=SourceLocation("policy", name="base", index=0),
            payload={"purpose": "x"},
        )
        values.update(overrides)
        return Diagnostic(**values)

    def test_str_carries_code_and_severity(self):
        text = str(self._diag())
        assert "error[PVL001]" in text
        assert text.startswith("policy 'base' rule 0: ")

    def test_payload_is_read_only(self):
        diagnostic = self._diag()
        with pytest.raises(TypeError):
            diagnostic.payload["purpose"] = "y"

    def test_as_dict_round_trips_to_json_types(self):
        payload = self._diag().as_dict()
        assert payload["code"] == "PVL001"
        assert payload["severity"] == "error"
        assert payload["location"]["index"] == 0
        assert payload["payload"] == {"purpose": "x"}

    def test_sort_key_orders_by_document_then_index_then_field(self):
        diagnostics = [
            self._diag(
                location=SourceLocation("population", name="a", index=0)
            ),
            self._diag(
                location=SourceLocation(
                    "policy", name="base", index=1, field="retention"
                )
            ),
            self._diag(
                location=SourceLocation(
                    "policy", name="base", index=1, field="purpose"
                )
            ),
            self._diag(location=SourceLocation("taxonomy")),
        ]
        ordered = sorted(diagnostics, key=sort_key)
        assert [d.location.document for d in ordered] == [
            "taxonomy",
            "policy",
            "policy",
            "population",
        ]
        assert ordered[1].location.field == "purpose"

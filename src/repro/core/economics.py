"""Policy-expansion economics (Section 9, Eqs. 25-31).

The house's dilemma: widening the privacy policy increases the utility it
can extract per provider (more data to sell, broader purposes), but the
resulting violations push providers past their default thresholds and
shrink the population.  The paper derives the break-even condition:

    ``Utility_future > Utility_current``
    ``N_future x (U + T) > N_current x U``
    ``T > U x (N_current / N_future - 1)``        (Eq. 31)

where ``U`` is the current per-provider utility and ``T`` the *extra*
per-provider utility the widening unlocks.  :func:`assess_expansion`
evaluates a concrete widening against a population end-to-end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable

from .._validation import check_int, check_real
from ..exceptions import ValidationError
from .default import DefaultModel
from .policy import HousePolicy
from .population import Population
from .sensitivity import SensitivityModel
from .severity import provider_violation


def utility_current(n_current: int, per_provider_utility: float) -> float:
    """Equation 25: ``Utility_current = N_current x U``."""
    n_current = check_int(n_current, "n_current", minimum=0)
    per_provider_utility = check_real(
        per_provider_utility, "per_provider_utility", minimum=0.0
    )
    return n_current * per_provider_utility


def n_future(n_current: int, n_defaults: int) -> int:
    """Equation 26: ``N_future = N_current - sum_i default_i``."""
    n_current = check_int(n_current, "n_current", minimum=0)
    n_defaults = check_int(n_defaults, "n_defaults", minimum=0)
    if n_defaults > n_current:
        raise ValidationError(
            f"cannot lose {n_defaults} providers from a population of {n_current}"
        )
    return n_current - n_defaults


def utility_future(
    n_future_providers: int,
    per_provider_utility: float,
    extra_utility: float,
) -> float:
    """Equation 27: ``Utility_future = N_future x (U + T)``."""
    n_future_providers = check_int(n_future_providers, "n_future_providers", minimum=0)
    per_provider_utility = check_real(
        per_provider_utility, "per_provider_utility", minimum=0.0
    )
    extra_utility = check_real(extra_utility, "extra_utility", minimum=0.0)
    return n_future_providers * (per_provider_utility + extra_utility)


def break_even_extra_utility(
    per_provider_utility: float, n_current: int, n_future_providers: int
) -> float:
    """Equation 31: the minimum ``T`` justifying the expansion.

    ``T* = U x (N_current / N_future - 1)``.  Returns ``inf`` when every
    provider defaults (``N_future == 0``): no finite extra utility can
    compensate for an empty database.
    """
    per_provider_utility = check_real(
        per_provider_utility, "per_provider_utility", minimum=0.0
    )
    n_current = check_int(n_current, "n_current", minimum=0)
    n_future_providers = check_int(
        n_future_providers, "n_future_providers", minimum=0
    )
    if n_future_providers > n_current:
        raise ValidationError(
            "N_future cannot exceed N_current (providers cannot appear by widening)"
        )
    if n_future_providers == 0:
        return math.inf
    return per_provider_utility * (n_current / n_future_providers - 1.0)


def expansion_justified(
    per_provider_utility: float,
    extra_utility: float,
    n_current: int,
    n_future_providers: int,
) -> bool:
    """Equation 28-31: True when ``Utility_future > Utility_current``.

    Evaluated through Eq. 31's strict inequality
    ``T > U x (N_current/N_future - 1)``, which is exactly equivalent and
    avoids comparing two products for the edge case ``N_future == 0``.
    """
    extra_utility = check_real(extra_utility, "extra_utility", minimum=0.0)
    threshold = break_even_extra_utility(
        per_provider_utility, n_current, n_future_providers
    )
    return extra_utility > threshold


@dataclass(frozen=True, slots=True)
class ExpansionAssessment:
    """End-to-end evaluation of one candidate policy widening.

    Ties together the model's pieces: the defaults the widening causes, the
    utilities before and after, the break-even ``T*``, and the verdict.
    """

    policy_name: str
    n_current: int
    n_future: int
    defaulted_providers: tuple[Hashable, ...]
    per_provider_utility: float
    extra_utility: float
    utility_current: float
    utility_future: float
    break_even_extra_utility: float
    justified: bool

    @property
    def utility_gain(self) -> float:
        """``Utility_future - Utility_current`` (negative when the house loses)."""
        return self.utility_future - self.utility_current

    @property
    def default_fraction(self) -> float:
        """Fraction of the current population that defaults."""
        if self.n_current == 0:
            return 0.0
        return len(self.defaulted_providers) / self.n_current

    def __str__(self) -> str:
        verdict = "justified" if self.justified else "NOT justified"
        return (
            f"expansion[{self.policy_name}]: {self.n_current} -> {self.n_future} "
            f"providers, utility {self.utility_current:g} -> "
            f"{self.utility_future:g} (T={self.extra_utility:g}, "
            f"T*={self.break_even_extra_utility:g}) -> {verdict}"
        )


def assess_expansion(
    population: Population,
    widened_policy: HousePolicy,
    per_provider_utility: float,
    extra_utility: float,
    *,
    sensitivities: SensitivityModel | None = None,
    default_model: DefaultModel | None = None,
    implicit_zero: bool = True,
) -> ExpansionAssessment:
    """Evaluate Section 9's trade-off for one concrete widened policy.

    Follows the paper's setup: the *current* policy causes no defaults (all
    ``Violation_i <= v_i``), so ``N_current = len(population)``; the widened
    policy is evaluated against every provider, defaults are counted, and
    Eqs. 25-31 decide whether the widening pays.

    Parameters
    ----------
    population:
        The current providers (none of whom have defaulted yet).
    widened_policy:
        The candidate expanded policy.
    per_provider_utility:
        ``U``, the utility each provider currently yields.
    extra_utility:
        ``T``, the extra per-provider utility the widening unlocks.
    sensitivities, default_model:
        Default to the population's own models.
    """
    if sensitivities is None:
        sensitivities = population.sensitivity_model()
    if default_model is None:
        default_model = population.default_model()
    defaulted: list[Hashable] = []
    for provider in population:
        violation = provider_violation(
            provider.preferences,
            widened_policy,
            sensitivities,
            implicit_zero=implicit_zero,
        )
        if default_model.defaults(provider.provider_id, violation):
            defaulted.append(provider.provider_id)
    current_n = len(population)
    future_n = n_future(current_n, len(defaulted))
    threshold = break_even_extra_utility(per_provider_utility, current_n, future_n)
    return ExpansionAssessment(
        policy_name=widened_policy.name,
        n_current=current_n,
        n_future=future_n,
        defaulted_providers=tuple(defaulted),
        per_provider_utility=float(per_provider_utility),
        extra_utility=float(extra_utility),
        utility_current=utility_current(current_n, per_provider_utility),
        utility_future=utility_future(future_n, per_provider_utility, extra_utility),
        break_even_extra_utility=threshold,
        justified=expansion_justified(
            per_provider_utility, extra_utility, current_n, future_n
        ),
    )

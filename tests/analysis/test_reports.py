"""Unit tests for violation matrices."""

from __future__ import annotations

import pytest

from repro.analysis import violation_matrix
from repro.core import Dimension


@pytest.fixture()
def matrix(paper_engine):
    return violation_matrix(paper_engine.report())


class TestViolationMatrix:
    def test_total_is_eq16(self, matrix):
        assert matrix.total == 140.0

    def test_provider_totals_match_paper(self, matrix):
        assert matrix.provider_totals == {
            "Alice": 0.0,
            "Ted": 60.0,
            "Bob": 80.0,
        }

    def test_cells_attribute_scoped(self, matrix):
        assert matrix.cell("Ted", "Weight") == 60.0
        assert matrix.cell("Ted", "Age") == 0.0
        assert matrix.cell("Alice", "Weight") == 0.0

    def test_attribute_totals(self, matrix):
        assert matrix.attribute_totals == {"Weight": 140.0}

    def test_dimension_totals(self, matrix):
        # Ted: 60 along G; Bob: 48 along G + 32 along R.
        assert matrix.dimension_totals[Dimension.GRANULARITY] == 108.0
        assert matrix.dimension_totals[Dimension.RETENTION] == 32.0
        assert matrix.dimension_totals[Dimension.VISIBILITY] == 0.0

    def test_marginals_consistent(self, matrix):
        assert sum(matrix.attribute_totals.values()) == pytest.approx(matrix.total)
        assert sum(matrix.dimension_totals.values()) == pytest.approx(matrix.total)
        assert sum(matrix.provider_totals.values()) == pytest.approx(matrix.total)

    def test_hottest_cells_ranked(self, matrix):
        hottest = matrix.hottest_cells(2)
        assert hottest[0] == ("Bob", "Weight", 80.0)
        assert hottest[1] == ("Ted", "Weight", 60.0)

    def test_to_text_contains_totals(self, matrix):
        text = matrix.to_text()
        assert "TOTAL" in text
        assert "140" in text

    def test_providers_in_population_order(self, matrix):
        assert matrix.providers == ("Alice", "Ted", "Bob")

    def test_clean_engine_has_empty_matrix(self, paper_engine, paper_population):
        from repro.core import HousePolicy, PrivacyTuple

        harmless = HousePolicy(
            [
                ("Weight", PrivacyTuple("pr", 0, 0, 0)),
                ("Age", PrivacyTuple("pr", 0, 0, 0)),
            ]
        )
        clean = violation_matrix(
            paper_engine.with_policy(harmless).report()
        )
        assert clean.total == 0.0
        assert clean.cells == {}
        assert clean.attributes == ()

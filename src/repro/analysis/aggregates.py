"""Population-level summary statistics over an engine evaluation.

Summaries slice by Westin segment (when providers carry segment labels)
because that is how the simulation synthesises heterogeneity: the
interesting empirical statement is usually "fundamentalists are violated
as often as everyone else but default five times as much".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.engine import EngineReport
from .tables import format_table


@dataclass(frozen=True, slots=True)
class SegmentStats:
    """One segment's (or the whole population's) aggregate outcomes."""

    segment: str
    n: int
    n_violated: int
    n_defaulted: int
    mean_severity: float
    median_severity: float
    p90_severity: float
    max_severity: float

    @property
    def violation_rate(self) -> float:
        """Fraction with ``w_i = 1``."""
        return self.n_violated / self.n if self.n else 0.0

    @property
    def default_rate(self) -> float:
        """Fraction with ``default_i = 1``."""
        return self.n_defaulted / self.n if self.n else 0.0


@dataclass(frozen=True)
class PopulationSummary:
    """Aggregate outcomes for the whole population and per segment."""

    overall: SegmentStats
    by_segment: tuple[SegmentStats, ...]

    def segment(self, name: str) -> SegmentStats:
        """The stats for one named segment.

        Raises
        ------
        KeyError
            If no providers carried that segment label.
        """
        for stats in self.by_segment:
            if stats.segment == name:
                return stats
        raise KeyError(name)

    def to_text(self) -> str:
        """A fixed-width rendering."""
        headers = [
            "segment",
            "n",
            "violated",
            "defaulted",
            "P(W)",
            "P(Default)",
            "mean sev",
            "p90 sev",
        ]
        rows = []
        for stats in (*self.by_segment, self.overall):
            rows.append(
                [
                    stats.segment,
                    stats.n,
                    stats.n_violated,
                    stats.n_defaulted,
                    round(stats.violation_rate, 4),
                    round(stats.default_rate, 4),
                    round(stats.mean_severity, 2),
                    round(stats.p90_severity, 2),
                ]
            )
        return format_table(headers, rows, title="population summary")


def _stats(segment: str, outcomes: list) -> SegmentStats:
    """Aggregate one group of provider outcomes."""
    severities = np.array([o.violation for o in outcomes], dtype=float)
    return SegmentStats(
        segment=segment,
        n=len(outcomes),
        n_violated=sum(1 for o in outcomes if o.violated),
        n_defaulted=sum(1 for o in outcomes if o.defaulted),
        mean_severity=float(severities.mean()) if len(outcomes) else 0.0,
        median_severity=float(np.median(severities)) if len(outcomes) else 0.0,
        p90_severity=(
            float(np.percentile(severities, 90)) if len(outcomes) else 0.0
        ),
        max_severity=float(severities.max()) if len(outcomes) else 0.0,
    )


def summarize(report: EngineReport) -> PopulationSummary:
    """Summarise an engine report overall and per segment.

    Providers without a segment label are grouped under ``"(unlabeled)"``.
    """
    groups: dict[str, list] = {}
    for outcome in report.outcomes:
        label = outcome.segment if outcome.segment is not None else "(unlabeled)"
        groups.setdefault(label, []).append(outcome)
    by_segment = tuple(
        _stats(label, group) for label, group in sorted(groups.items())
    )
    overall = _stats("ALL", list(report.outcomes))
    return PopulationSummary(overall=overall, by_segment=by_segment)

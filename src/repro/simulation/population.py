"""Westin-segment population synthesis.

Kumaraguru & Cranor's compilation of the Westin surveys (the paper's ref
[11]) segments the public into three groups.  We parameterise each segment
by preference tightness, sensitivity ranges, and default-threshold range,
and synthesise :class:`~repro.core.population.Population` objects from a
:class:`PopulationSpec`.  The default fractions follow the frequently
cited Westin 2001 split (roughly a quarter fundamentalist, a fifth
unconcerned, the balance pragmatist).

The synthesis is a *substitution* documented in DESIGN.md: the paper
requires some joint distribution of ``(preferences, sigma_i, v_i)`` and
points at Westin segmentation as its empirical source; any seeded draw
from these segments exercises the identical model code paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Mapping, Sequence

import numpy as np

from .._validation import check_int, check_non_empty_str, check_real
from ..core.dimensions import Dimension, ORDERED_DIMENSIONS
from ..core.policy import HousePolicy
from ..core.population import Population, Provider
from ..core.preferences import ProviderPreferences
from ..core.sensitivity import DimensionSensitivity
from ..core.tuples import PrivacyTuple
from ..exceptions import SimulationError
from ..taxonomy.builder import Taxonomy
from .sampling import (
    sample_dimension_sensitivity,
    sample_preference_tuple,
    sample_threshold,
)


@dataclass(frozen=True, slots=True)
class WestinSegment:
    """One privacy-disposition segment of the provider population.

    Parameters
    ----------
    name:
        Segment label carried onto each generated provider.
    fraction:
        Share of the population in this segment; the spec's fractions must
        sum to 1.
    tightness:
        Preference tightness in ``[0, 1]`` (see
        :func:`repro.simulation.sampling.sample_preference_tuple`).  Used
        for (attribute, purpose) pairs the anchor policy does not cover.
    value_sensitivity:
        Bounds for the data-value sensitivity ``s``.
    dimension_sensitivity:
        Bounds for each dimension weight ``s[dim]``.
    threshold:
        Bounds for the default tolerance ``v_i``.
    headroom:
        Inclusive bounds (in ranks) of how far *above* an anchor policy's
        rank this segment's preferences sit.  Providers currently in the
        system accepted the current policy, so their preferences dominate
        it; the headroom is the slack that later widening eats into.
        Fundamentalists have little slack, the unconcerned plenty.
    """

    name: str
    fraction: float
    tightness: float
    value_sensitivity: tuple[float, float] = (1.0, 3.0)
    dimension_sensitivity: tuple[float, float] = (1.0, 3.0)
    threshold: tuple[float, float] = (10.0, 100.0)
    headroom: tuple[int, int] = (0, 2)

    def __post_init__(self) -> None:
        check_non_empty_str(self.name, "name")
        fraction = check_real(self.fraction, "fraction", minimum=0.0)
        if fraction > 1.0:
            raise SimulationError(f"segment fraction must be <= 1, got {fraction}")
        tightness = check_real(self.tightness, "tightness", minimum=0.0)
        if tightness > 1.0:
            raise SimulationError(f"tightness must be <= 1, got {tightness}")
        lo, hi = self.headroom
        check_int(lo, "headroom low", minimum=0)
        check_int(hi, "headroom high", minimum=lo)


def standard_segments() -> tuple[WestinSegment, ...]:
    """The canonical three Westin segments with calibrated dispositions.

    * **Fundamentalists** (~25%): tight preferences, high sensitivities,
      low tolerance — they are violated easily and default quickly.
    * **Pragmatists** (~57%): middling everything.
    * **Unconcerned** (~18%): loose preferences, low sensitivities, very
      high tolerance — they rarely default.
    """
    return (
        WestinSegment(
            name="fundamentalist",
            fraction=0.25,
            tightness=0.7,
            value_sensitivity=(2.0, 4.0),
            dimension_sensitivity=(2.0, 5.0),
            threshold=(5.0, 40.0),
            headroom=(0, 0),
        ),
        WestinSegment(
            name="pragmatist",
            fraction=0.57,
            tightness=0.4,
            value_sensitivity=(1.0, 3.0),
            dimension_sensitivity=(1.0, 3.0),
            threshold=(30.0, 150.0),
            headroom=(0, 2),
        ),
        WestinSegment(
            name="unconcerned",
            fraction=0.18,
            tightness=0.1,
            value_sensitivity=(0.5, 1.5),
            dimension_sensitivity=(0.5, 1.5),
            threshold=(150.0, 600.0),
            headroom=(1, 4),
        ),
    )


@dataclass(frozen=True)
class PopulationSpec:
    """Everything needed to synthesise a population.

    Parameters
    ----------
    taxonomy:
        Supplies ladders and the purpose vocabulary.
    attributes:
        Attribute name -> social sensitivity ``Sigma^a``.
    purposes:
        The purposes providers will express preferences for.  Defaults to
        every purpose in the taxonomy.
    n_providers:
        Population size.
    segments:
        The Westin segments; fractions must sum to 1 (within 1e-9).
    seed:
        Seed for the NumPy generator.
    id_prefix:
        Generated providers are named ``f"{id_prefix}{index}"``.
    anchor_policy:
        When given, preferences for the (attribute, purpose) pairs the
        policy covers are drawn *at or above* the policy's ranks (policy
        rank + segment headroom) — modelling Section 9's premise that the
        current providers accepted the current policy, so the baseline
        causes no violations and defaults only appear as widening eats
        through the headroom.  Pairs the policy does not cover fall back
        to the segment's tightness sampler.
    """

    taxonomy: Taxonomy
    attributes: Mapping[str, float]
    n_providers: int
    purposes: Sequence[str] | None = None
    segments: tuple[WestinSegment, ...] = field(default_factory=standard_segments)
    seed: int = 0
    id_prefix: str = "provider-"
    anchor_policy: HousePolicy | None = None

    def __post_init__(self) -> None:
        check_int(self.n_providers, "n_providers", minimum=1)
        check_int(self.seed, "seed", minimum=0)
        if not self.attributes:
            raise SimulationError("a population spec needs at least one attribute")
        total = sum(segment.fraction for segment in self.segments)
        if abs(total - 1.0) > 1e-9:
            raise SimulationError(
                f"segment fractions must sum to 1, got {total}"
            )
        for purpose in self.purposes or ():
            self.taxonomy.purposes.validate(purpose)

    def effective_purposes(self) -> tuple[str, ...]:
        """The purposes preferences are generated for."""
        if self.purposes is not None:
            return tuple(self.purposes)
        return tuple(self.taxonomy.purposes)


def generate_population(spec: PopulationSpec) -> Population:
    """Synthesise a deterministic population from *spec*.

    Each provider gets, per attribute and per purpose, one explicit
    preference tuple (anchored above the anchor policy when one is given,
    otherwise drawn by segment tightness), one per-attribute sensitivity
    record, and one default threshold.  Segment assignment is an exact
    quota allocation (largest-remainder) followed by a seeded shuffle, so
    the realised segment mix matches the spec's fractions as closely as
    integer counts allow — a property the tests assert.
    """
    rng = np.random.default_rng(spec.seed)
    segment_of = _allocate_segments(rng, spec)
    purposes = spec.effective_purposes()
    anchor = _anchor_ranks(spec.anchor_policy)
    providers: list[Provider] = []
    for index in range(spec.n_providers):
        segment = segment_of[index]
        provider_id = f"{spec.id_prefix}{index}"
        entries = []
        sensitivity: dict[str, DimensionSensitivity] = {}
        for attribute in spec.attributes:
            for purpose in purposes:
                base = anchor.get((attribute, purpose))
                if base is not None:
                    entries.append(
                        (
                            attribute,
                            _anchored_preference(
                                rng, spec.taxonomy, purpose, base, segment
                            ),
                        )
                    )
                else:
                    entries.append(
                        (
                            attribute,
                            sample_preference_tuple(
                                rng, spec.taxonomy, purpose, segment.tightness
                            ),
                        )
                    )
            sensitivity[attribute] = sample_dimension_sensitivity(
                rng, segment.value_sensitivity, segment.dimension_sensitivity
            )
        providers.append(
            Provider(
                preferences=ProviderPreferences(provider_id, entries),
                sensitivity=sensitivity,
                threshold=sample_threshold(rng, segment.threshold),
                segment=segment.name,
            )
        )
    return Population(providers, attribute_sensitivities=dict(spec.attributes))


def _anchor_ranks(
    policy: HousePolicy | None,
) -> dict[tuple[str, str], dict[Dimension, int]]:
    """Per (attribute, purpose), the policy's effective (max) rank per dimension."""
    if policy is None:
        return {}
    ranks: dict[tuple[str, str], dict[Dimension, int]] = {}
    for entry in policy:
        key = (entry.attribute, entry.purpose)
        current = ranks.setdefault(key, {dim: 0 for dim in ORDERED_DIMENSIONS})
        for dim in ORDERED_DIMENSIONS:
            current[dim] = max(current[dim], entry.tuple.rank(dim))
    return ranks


def _anchored_preference(
    rng: np.random.Generator,
    taxonomy: Taxonomy,
    purpose: str,
    base: Mapping[Dimension, int],
    segment: WestinSegment,
) -> "PrivacyTuple":
    """A preference dominating the anchor ranks by a per-dimension headroom draw."""
    lo, hi = segment.headroom
    ranks: dict[str, int] = {}
    for dim in ORDERED_DIMENSIONS:
        headroom = int(rng.integers(lo, hi + 1))
        ranks[dim.value] = taxonomy.domain(dim).clamp(base[dim] + headroom)
    return PrivacyTuple(purpose=purpose, **ranks)


def _allocate_segments(
    rng: np.random.Generator, spec: PopulationSpec
) -> list[WestinSegment]:
    """Exact largest-remainder quota allocation of providers to segments."""
    n = spec.n_providers
    quotas = [segment.fraction * n for segment in spec.segments]
    counts = [int(q) for q in quotas]
    remainder = n - sum(counts)
    by_fraction = sorted(
        range(len(spec.segments)),
        key=lambda i: (quotas[i] - counts[i], -i),
        reverse=True,
    )
    for i in by_fraction[:remainder]:
        counts[i] += 1
    assignment: list[WestinSegment] = []
    for segment, count in zip(spec.segments, counts):
        assignment.extend([segment] * count)
    rng.shuffle(assignment)  # type: ignore[arg-type]
    return assignment

"""The alpha-PPDB in practice: a sqlite store with a purpose-aware gate.

Builds an on-disk privacy database for the paper's worked example, stores
actual data values, and walks the enforcement story:

* compliant access succeeds and is logged;
* a too-wide access is **denied** in enforce mode, with per-provider,
  per-dimension findings explaining why;
* the same access in **audit** mode succeeds but the violation is logged,
  so the observed violation rate over real accesses can be reported;
* the policy is widened, the alpha-PPDB certificate fails, defaulted
  providers are evicted (their data disappears), and the house recertifies.

Run:  python examples/ppdb_enforcement.py
"""

import os
import tempfile

from repro import AccessDeniedError, PrivacyTuple
from repro.datasets import paper_example_policy, paper_example_population
from repro.storage import (
    AccessRequest,
    EnforcementMode,
    PrivacyDatabase,
)

path = os.path.join(tempfile.mkdtemp(prefix="ppviol-"), "clinic.sqlite")
print(f"database: {path}")
print()

db = PrivacyDatabase.create(path)
db.install(paper_example_policy(), paper_example_population())
for name, weight in (("Alice", 60), ("Ted", 82), ("Bob", 95)):
    db.repository.put_datum(name, "Weight", weight)

# --- compliant access ---------------------------------------------------
gate = db.gate(mode=EnforcementMode.ENFORCE)
ok = gate.request(AccessRequest("Weight", PrivacyTuple("pr", 1, 1, 1)))
print(f"narrow read allowed -> values: {ok.values}")

# --- a too-wide access is denied with an explanation ---------------------
try:
    gate.request(AccessRequest("Weight", PrivacyTuple("pr", 3, 3, 3)))
except AccessDeniedError as error:
    print(f"wide read DENIED: {error}")
    for finding in error.decision.findings:
        print(
            f"  {finding.provider_id}: {finding.dimension.value} "
            f"{finding.preference_value} -> {finding.requested_value} "
            f"(+{finding.amount})"
        )
print()

# --- audit mode: allow but record --------------------------------------
auditor = db.gate(mode=EnforcementMode.AUDIT)
logged = auditor.request(AccessRequest("Weight", PrivacyTuple("pr", 3, 3, 3)))
print(
    f"audit-mode read allowed={logged.allowed}, violates={logged.violates}, "
    f"violated={logged.violated_providers}"
)
audit = db.audit_log.report()
print(
    f"audit log: {audit.total_events} events, observed violation rate "
    f"{audit.observed_violation_rate:.2f}"
)
print()

# --- certify, evict defaulted providers, recertify ----------------------
print(db.certify(0.7))
report = db.engine().report()
print(
    f"stored-state evaluation: P(W)={report.violation_probability:.3f}, "
    f"P(Default)={report.default_probability:.3f}"
)
evicted = db.evict_defaulted()
print(f"evicted defaulted providers: {evicted}")
print(f"Ted's data after eviction: {db.repository.get_datum('Ted', 'Weight') if 'Ted' in db.repository.provider_ids() else '(provider gone)'}")
print(db.certify(0.7))
print()

post = db.engine().report()
print(
    f"after eviction: N={post.n_providers}, "
    f"P(W)={post.violation_probability:.3f}, "
    f"P(Default)={post.default_probability:.3f}"
)
db.close()

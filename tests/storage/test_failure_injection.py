"""Failure injection: the storage layer under adverse conditions."""

from __future__ import annotations

import sqlite3

import pytest

from repro.core import PrivacyTuple, ProviderPreferences
from repro.exceptions import SchemaMismatchError, StorageError
from repro.storage import (
    AccessRequest,
    EnforcementMode,
    PrivacyDatabase,
)


@pytest.fixture()
def populated_path(tmp_path, paper_policy, paper_population):
    path = str(tmp_path / "ppdb.sqlite")
    with PrivacyDatabase.create(path) as db:
        db.install(paper_policy, paper_population)
    return path


class TestCorruptedDatabases:
    def test_dropped_table_detected_on_open(self, populated_path):
        connection = sqlite3.connect(populated_path)
        connection.execute("DROP TABLE preferences")
        connection.commit()
        connection.close()
        with pytest.raises(SchemaMismatchError):
            PrivacyDatabase.open(populated_path)

    def test_missing_version_row_detected(self, populated_path):
        connection = sqlite3.connect(populated_path)
        connection.execute("DELETE FROM meta WHERE key = 'schema_version'")
        connection.commit()
        connection.close()
        with pytest.raises(SchemaMismatchError):
            PrivacyDatabase.open(populated_path)

    def test_garbage_file_rejected(self, tmp_path):
        path = str(tmp_path / "not-a-db.sqlite")
        with open(path, "wb") as handle:
            handle.write(b"definitely not sqlite")
        with pytest.raises(sqlite3.DatabaseError):
            PrivacyDatabase.open(path)

    def test_empty_sqlite_file_rejected(self, tmp_path):
        path = str(tmp_path / "empty.sqlite")
        sqlite3.connect(path).close()
        with pytest.raises(SchemaMismatchError):
            PrivacyDatabase.open(path)


class TestClosedHandles:
    def test_operations_after_close_raise(self, populated_path):
        db = PrivacyDatabase.open(populated_path)
        db.close()
        with pytest.raises(sqlite3.ProgrammingError):
            db.engine()

    def test_double_close_is_harmless(self, populated_path):
        db = PrivacyDatabase.open(populated_path)
        db.close()
        db.close()


class TestConstraintViolations:
    def test_foreign_keys_enforced(self, populated_path):
        """Direct SQL cannot attach preferences to a ghost provider."""
        db = PrivacyDatabase.open(populated_path)
        with pytest.raises(sqlite3.IntegrityError):
            db.repository._connection.execute(  # noqa: SLF001 - injection test
                "INSERT INTO preferences (provider_id, attribute, purpose, "
                "visibility, granularity, retention) "
                "VALUES ('ghost', 'Weight', 'pr', 1, 1, 1)"
            )
        db.close()

    def test_negative_ranks_rejected_by_schema(self, populated_path):
        db = PrivacyDatabase.open(populated_path)
        with pytest.raises(sqlite3.IntegrityError):
            db.repository._connection.execute(  # noqa: SLF001 - injection test
                "INSERT INTO policy (attribute, purpose, visibility, "
                "granularity, retention) VALUES ('Weight', 'pr', -1, 0, 0)"
            )
        db.close()

    def test_duplicate_install_leaves_store_intact(self, populated_path, paper_policy, paper_population):
        db = PrivacyDatabase.open(populated_path)
        with pytest.raises(StorageError):
            db.install(paper_policy, paper_population)
        assert db.engine().report().n_providers == 3
        db.close()


class TestHostileValues:
    def test_sql_metacharacters_in_ids_are_inert(self):
        db = PrivacyDatabase.create(":memory:")
        evil = "alice'; DROP TABLE providers; --"
        repo = db.repository
        repo.ensure_attribute("weight")
        repo.ensure_purpose("billing")
        repo.add_provider(evil)
        repo.put_datum(evil, "weight", "60")
        repo.add_preferences(
            ProviderPreferences(
                evil, [("weight", PrivacyTuple("billing", 2, 2, 2))]
            )
        )
        assert repo.get_datum(evil, "weight") == "60"
        assert repo.provider_ids() == (evil,)
        # The gate handles the hostile id end-to-end too.
        decision = db.gate(mode=EnforcementMode.AUDIT).request(
            AccessRequest(
                "weight", PrivacyTuple("billing", 1, 1, 1), provider_id=evil
            )
        )
        assert decision.allowed
        db.close()

    def test_unicode_values_round_trip(self):
        db = PrivacyDatabase.create(":memory:")
        repo = db.repository
        repo.ensure_attribute("name")
        repo.add_provider("ünïcødé-👤")
        repo.put_datum("ünïcødé-👤", "name", "Ж日本語🎉")
        assert repo.get_datum("ünïcødé-👤", "name") == "Ж日本語🎉"
        db.close()

"""Property-based round-trip tests: documents and storage."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core import (
    HousePolicy,
    Population,
    PrivacyTuple,
    Provider,
    ProviderPreferences,
    ViolationEngine,
)
from repro.policy_lang import (
    parse_policy,
    parse_preferences,
    policy_to_dict,
    preferences_to_dict,
)
from repro.storage import PrivacyDatabase
from repro.taxonomy import standard_taxonomy

TAXONOMY = standard_taxonomy(["p1", "p2"])

# Ranks bounded by the canonical ladders: V<=4, G<=3, R<=4.
v_ranks = st.integers(0, 4)
g_ranks = st.integers(0, 3)
r_ranks = st.integers(0, 4)
purposes = st.sampled_from(["p1", "p2"])
attributes = st.sampled_from(["alpha", "beta", "gamma"])


@st.composite
def tuples_in_taxonomy(draw):
    return PrivacyTuple(
        purpose=draw(purposes),
        visibility=draw(v_ranks),
        granularity=draw(g_ranks),
        retention=draw(r_ranks),
    )


@st.composite
def policies(draw):
    n = draw(st.integers(0, 5))
    return HousePolicy(
        [(draw(attributes), draw(tuples_in_taxonomy())) for _ in range(n)],
        name=draw(st.sampled_from(["pol-a", "pol-b"])),
    )


@st.composite
def preference_sets(draw):
    n = draw(st.integers(0, 5))
    return ProviderPreferences(
        draw(st.sampled_from(["u1", "u2"])),
        [(draw(attributes), draw(tuples_in_taxonomy())) for _ in range(n)],
    )


class TestDocumentRoundTrips:
    @given(policy=policies())
    @settings(max_examples=100)
    def test_policy_dict_round_trip_with_taxonomy(self, policy):
        assert parse_policy(policy_to_dict(policy, TAXONOMY), TAXONOMY) == policy

    @given(policy=policies())
    def test_policy_dict_round_trip_rank_form(self, policy):
        assert parse_policy(policy_to_dict(policy), TAXONOMY) == policy

    @given(prefs=preference_sets())
    @settings(max_examples=100)
    def test_preferences_round_trip(self, prefs):
        document = preferences_to_dict(prefs, TAXONOMY)
        assert parse_preferences(document, TAXONOMY) == prefs


@st.composite
def small_populations(draw):
    n = draw(st.integers(1, 4))
    providers = []
    for index in range(n):
        entries = [
            (draw(attributes), draw(tuples_in_taxonomy()))
            for _ in range(draw(st.integers(1, 3)))
        ]
        providers.append(
            Provider(
                preferences=ProviderPreferences(f"u{index}", entries),
                threshold=draw(
                    st.floats(min_value=0.0, max_value=100.0, allow_nan=False)
                ),
            )
        )
    return Population(providers)


class TestStorageRoundTrips:
    @given(policy=policies(), population=small_populations())
    @settings(max_examples=40, deadline=None)
    def test_stored_engine_equals_direct_engine(self, policy, population):
        direct = ViolationEngine(policy, population).report()
        with PrivacyDatabase.create(":memory:") as db:
            db.install(policy, population)
            stored = db.engine().report()
        assert stored.n_violated == direct.n_violated
        assert stored.n_defaulted == direct.n_defaulted
        assert stored.total_violations == direct.total_violations

    @given(policy=policies())
    @settings(max_examples=40, deadline=None)
    def test_policy_storage_round_trip(self, policy):
        with PrivacyDatabase.create(":memory:") as db:
            for entry in policy:
                db.repository.ensure_attribute(entry.attribute)
            db.repository.replace_policy(policy)
            assert db.repository.load_policy() == policy

"""Unit tests for the alpha-PPDB (Definition 3)."""

from __future__ import annotations

import pytest

from repro.core import (
    HousePolicy,
    Population,
    PrivacyTuple,
    Provider,
    ProviderPreferences,
    certify_alpha_ppdb,
    is_alpha_ppdb,
)
from repro.exceptions import ValidationError


def _population(ranks: list[int]) -> Population:
    providers = [
        Provider(
            preferences=ProviderPreferences(
                f"p{i}", [("weight", PrivacyTuple("billing", r, r, r))]
            )
        )
        for i, r in enumerate(ranks)
    ]
    return Population(providers)


@pytest.fixture()
def policy() -> HousePolicy:
    return HousePolicy([("weight", PrivacyTuple("billing", 2, 2, 2))], name="pol")


class TestIsAlphaPPDB:
    def test_boundary_inclusive(self, policy):
        population = _population([0, 2])  # P(W) = 0.5
        assert is_alpha_ppdb(population, policy, 0.5)

    def test_below_alpha_satisfied(self, policy):
        population = _population([2, 2, 0, 2])  # P(W) = 0.25
        assert is_alpha_ppdb(population, policy, 0.3)

    def test_above_alpha_violated(self, policy):
        population = _population([0, 0, 2])  # P(W) = 2/3
        assert not is_alpha_ppdb(population, policy, 0.5)

    def test_alpha_zero_requires_perfect(self, policy):
        assert is_alpha_ppdb(_population([2, 3]), policy, 0.0)
        assert not is_alpha_ppdb(_population([2, 0]), policy, 0.0)

    def test_alpha_one_always_satisfied(self, policy):
        assert is_alpha_ppdb(_population([0, 0, 0]), policy, 1.0)

    def test_invalid_alpha_rejected(self, policy):
        with pytest.raises(ValidationError):
            is_alpha_ppdb(_population([0]), policy, 1.5)
        with pytest.raises(ValidationError):
            is_alpha_ppdb(_population([0]), policy, -0.1)


class TestCertificate:
    def test_certificate_fields(self, policy):
        population = _population([0, 2, 1])
        certificate = certify_alpha_ppdb(population, policy, 0.5)
        assert certificate.alpha == 0.5
        assert certificate.n_providers == 3
        assert certificate.violated_providers == ("p0", "p2")
        assert certificate.violation_probability == pytest.approx(2 / 3)
        assert not certificate.satisfied
        assert certificate.policy_name == "pol"

    def test_margin_sign(self, policy):
        population = _population([0, 2])
        good = certify_alpha_ppdb(population, policy, 0.9)
        bad = certify_alpha_ppdb(population, policy, 0.1)
        assert good.margin > 0
        assert bad.margin < 0

    def test_empty_population_trivially_satisfied(self, policy):
        certificate = certify_alpha_ppdb(Population([]), policy, 0.0)
        assert certificate.satisfied
        assert certificate.violation_probability == 0.0
        assert certificate.n_providers == 0

    def test_paper_example_alpha_sweep(self, paper_population, paper_policy):
        # P(W) = 2/3: certificates flip exactly at that threshold.
        below = certify_alpha_ppdb(paper_population, paper_policy, 0.5)
        at = certify_alpha_ppdb(paper_population, paper_policy, 2 / 3)
        above = certify_alpha_ppdb(paper_population, paper_policy, 0.7)
        assert not below.satisfied
        assert at.satisfied
        assert above.satisfied

    def test_str_rendering_mentions_verdict(self, policy):
        certificate = certify_alpha_ppdb(_population([0]), policy, 0.0)
        assert "VIOLATED" in str(certificate)
        certificate_ok = certify_alpha_ppdb(_population([2]), policy, 0.0)
        assert "SATISFIED" in str(certificate_ok)

"""ppviol — quantifying privacy violations in relational databases.

A full implementation of *Quantifying Privacy Violations* (Banerjee,
Karimi Adl, Wu, Barker — SDM@VLDB 2011): the four-dimensional privacy
taxonomy, the formal violation model (Definitions 1-5, Equations 8-31),
sensitivity-weighted severity, data-provider default, alpha-PPDB
certification, policy-expansion economics, a sqlite-backed
privacy-preserving store with purpose-aware enforcement, and a Westin
population simulator for scenario analysis.

Quickstart
----------
>>> from repro import (
...     HousePolicy, PrivacyTuple, Population, Provider,
...     ProviderPreferences, ViolationEngine,
... )
>>> policy = HousePolicy([("weight", PrivacyTuple("billing", 2, 2, 2))])
>>> prefs = ProviderPreferences("alice", [("weight", PrivacyTuple("billing", 2, 1, 2))])
>>> engine = ViolationEngine(policy, Population([Provider(preferences=prefs)]))
>>> engine.report().violation_probability
1.0

The public API re-exported here is the stable surface; submodules expose
the finer-grained machinery.
"""

from .core import (
    AttributeSensitivities,
    DefaultModel,
    Dimension,
    DimensionSensitivity,
    EngineReport,
    ExpansionAssessment,
    HousePolicy,
    ORDERED_DIMENSIONS,
    OrderedDomain,
    PPDBCertificate,
    PolicyEntry,
    Population,
    PreferenceEntry,
    PrivacyTuple,
    Provider,
    ProviderOutcome,
    ProviderPreferences,
    ProviderSensitivity,
    SensitivityModel,
    SeverityBreakdown,
    TrialEstimate,
    ViolationEngine,
    ViolationFinding,
    assess_expansion,
    break_even_extra_utility,
    certify_alpha_ppdb,
    comp,
    conf,
    default_probability,
    diff,
    effective_preferences,
    estimate_probability_by_trials,
    exceeded_dimensions,
    expansion_justified,
    find_violations,
    is_alpha_ppdb,
    provider_default,
    provider_violation,
    total_violations,
    utility_current,
    utility_future,
    violation_indicator,
    violation_probability,
)
from .exceptions import (
    AccessDeniedError,
    DomainError,
    PolicyDocumentError,
    PrivacyModelError,
    SchemaMismatchError,
    SimulationError,
    StorageError,
    UnknownAttributeError,
    UnknownProviderError,
    UnknownPurposeError,
    ValidationError,
)
from .lint import (
    Diagnostic,
    LintConfig,
    LintReport,
    Severity,
    lint_documents,
)
from .perf import (
    BatchReport,
    BatchViolationEngine,
    CompiledPopulation,
    batch_assess_expansion,
    policy_fingerprint,
)
from .taxonomy import Taxonomy, TaxonomyBuilder, standard_taxonomy

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core model
    "AttributeSensitivities",
    "DefaultModel",
    "Dimension",
    "DimensionSensitivity",
    "EngineReport",
    "ExpansionAssessment",
    "HousePolicy",
    "ORDERED_DIMENSIONS",
    "OrderedDomain",
    "PPDBCertificate",
    "PolicyEntry",
    "Population",
    "PreferenceEntry",
    "PrivacyTuple",
    "Provider",
    "ProviderOutcome",
    "ProviderPreferences",
    "ProviderSensitivity",
    "SensitivityModel",
    "SeverityBreakdown",
    "TrialEstimate",
    "ViolationEngine",
    "ViolationFinding",
    "assess_expansion",
    "break_even_extra_utility",
    "certify_alpha_ppdb",
    "comp",
    "conf",
    "default_probability",
    "diff",
    "effective_preferences",
    "estimate_probability_by_trials",
    "exceeded_dimensions",
    "expansion_justified",
    "find_violations",
    "is_alpha_ppdb",
    "provider_default",
    "provider_violation",
    "total_violations",
    "utility_current",
    "utility_future",
    "violation_indicator",
    "violation_probability",
    # perf (vectorized batch engine)
    "BatchReport",
    "BatchViolationEngine",
    "CompiledPopulation",
    "batch_assess_expansion",
    "policy_fingerprint",
    # taxonomy
    "Taxonomy",
    "TaxonomyBuilder",
    "standard_taxonomy",
    # lint
    "Diagnostic",
    "LintConfig",
    "LintReport",
    "Severity",
    "lint_documents",
    # exceptions
    "AccessDeniedError",
    "DomainError",
    "PolicyDocumentError",
    "PrivacyModelError",
    "SchemaMismatchError",
    "SimulationError",
    "StorageError",
    "UnknownAttributeError",
    "UnknownProviderError",
    "UnknownPurposeError",
    "ValidationError",
]

"""SQL schema for the privacy-preserving database.

One private-data table in entity-attribute-value layout (so any logical
relation schema fits without migrations) plus the privacy metadata the
violation model needs:

* ``providers`` — the data providers, their segment and default threshold;
* ``attributes`` — the relation's attributes and ``Sigma^a``;
* ``purposes`` — the purpose vocabulary;
* ``data`` — the private data ``t_i^j`` (EAV);
* ``policy`` — the house policy ``HP`` as rank-valued rows;
* ``preferences`` — provider preference tuples ``<i, a, p>``;
* ``sensitivities`` — per-datum sensitivity records ``sigma_i^a``;
* ``audit_log`` — append-only access/violation events (ordered by a
  monotone sequence number, not wall-clock, so runs are deterministic);
* ``meta`` — schema version and bookkeeping.

Foreign keys are enforced (``PRAGMA foreign_keys = ON`` at connection
time) so privacy metadata can never dangle from deleted providers.
"""

from __future__ import annotations

#: Bump when the DDL changes incompatibly; checked on open.
SCHEMA_VERSION = 1

#: Table creation statements, in dependency order.
DDL_STATEMENTS: tuple[str, ...] = (
    """
    CREATE TABLE meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE providers (
        provider_id TEXT PRIMARY KEY,
        segment     TEXT,
        threshold   REAL  -- NULL means "never defaults" (v_i = infinity)
    )
    """,
    """
    CREATE TABLE attributes (
        name        TEXT PRIMARY KEY,
        sensitivity REAL NOT NULL DEFAULT 1.0 CHECK (sensitivity >= 0)
    )
    """,
    """
    CREATE TABLE purposes (
        name TEXT PRIMARY KEY
    )
    """,
    """
    CREATE TABLE data (
        provider_id TEXT NOT NULL REFERENCES providers(provider_id)
                    ON DELETE CASCADE,
        attribute   TEXT NOT NULL REFERENCES attributes(name),
        value       TEXT,
        PRIMARY KEY (provider_id, attribute)
    )
    """,
    """
    CREATE TABLE policy (
        id          INTEGER PRIMARY KEY,
        attribute   TEXT    NOT NULL REFERENCES attributes(name),
        purpose     TEXT    NOT NULL REFERENCES purposes(name),
        visibility  INTEGER NOT NULL CHECK (visibility >= 0),
        granularity INTEGER NOT NULL CHECK (granularity >= 0),
        retention   INTEGER NOT NULL CHECK (retention >= 0),
        UNIQUE (attribute, purpose, visibility, granularity, retention)
    )
    """,
    """
    CREATE TABLE preferences (
        id          INTEGER PRIMARY KEY,
        provider_id TEXT    NOT NULL REFERENCES providers(provider_id)
                    ON DELETE CASCADE,
        attribute   TEXT    NOT NULL REFERENCES attributes(name),
        purpose     TEXT    NOT NULL REFERENCES purposes(name),
        visibility  INTEGER NOT NULL CHECK (visibility >= 0),
        granularity INTEGER NOT NULL CHECK (granularity >= 0),
        retention   INTEGER NOT NULL CHECK (retention >= 0),
        UNIQUE (provider_id, attribute, purpose,
                visibility, granularity, retention)
    )
    """,
    """
    CREATE TABLE sensitivities (
        provider_id TEXT NOT NULL REFERENCES providers(provider_id)
                    ON DELETE CASCADE,
        attribute   TEXT NOT NULL REFERENCES attributes(name),
        value       REAL NOT NULL DEFAULT 1.0 CHECK (value >= 0),
        visibility  REAL NOT NULL DEFAULT 1.0 CHECK (visibility >= 0),
        granularity REAL NOT NULL DEFAULT 1.0 CHECK (granularity >= 0),
        retention   REAL NOT NULL DEFAULT 1.0 CHECK (retention >= 0),
        PRIMARY KEY (provider_id, attribute)
    )
    """,
    """
    CREATE TABLE audit_log (
        seq         INTEGER PRIMARY KEY AUTOINCREMENT,
        event       TEXT    NOT NULL CHECK (event IN
                        ('access-granted', 'access-denied',
                         'violation-logged', 'policy-changed')),
        provider_id TEXT,
        attribute   TEXT,
        purpose     TEXT,
        visibility  INTEGER,
        granularity INTEGER,
        retention   INTEGER,
        detail      TEXT  -- JSON payload (findings, policy diffs, ...)
    )
    """,
    "CREATE INDEX idx_preferences_provider ON preferences(provider_id)",
    "CREATE INDEX idx_preferences_attribute ON preferences(attribute, purpose)",
    "CREATE INDEX idx_policy_attribute ON policy(attribute, purpose)",
    "CREATE INDEX idx_data_attribute ON data(attribute)",
    "CREATE INDEX idx_audit_provider ON audit_log(provider_id)",
)

#: Tables that must exist for a database to be recognised as ours.
EXPECTED_TABLES: frozenset[str] = frozenset(
    {
        "meta",
        "providers",
        "attributes",
        "purposes",
        "data",
        "policy",
        "preferences",
        "sensitivities",
        "audit_log",
    }
)

"""Unit tests for widening steps and paths."""

from __future__ import annotations

import pytest

from repro.core import Dimension, HousePolicy, PrivacyTuple
from repro.exceptions import SimulationError
from repro.simulation import WideningStep, widen, widening_path
from repro.taxonomy import standard_taxonomy


@pytest.fixture()
def taxonomy():
    return standard_taxonomy(["billing"])


@pytest.fixture()
def policy():
    return HousePolicy(
        [
            ("weight", PrivacyTuple("billing", 2, 2, 2)),
            ("age", PrivacyTuple("billing", 4, 3, 4)),  # at the ladder tops
        ],
        name="base",
    )


class TestWideningStep:
    def test_uniform(self):
        step = WideningStep.uniform(2)
        assert step.deltas == {
            Dimension.VISIBILITY: 2,
            Dimension.GRANULARITY: 2,
            Dimension.RETENTION: 2,
        }

    def test_along(self):
        step = WideningStep.along(Dimension.RETENTION, 3)
        assert step.deltas == {Dimension.RETENTION: 3}

    def test_addition_merges(self):
        combined = WideningStep.along(Dimension.VISIBILITY, 1) + WideningStep.along(
            Dimension.VISIBILITY, 2
        )
        assert combined.deltas[Dimension.VISIBILITY] == 3

    def test_scaled(self):
        assert WideningStep.uniform(1).scaled(3) == WideningStep.uniform(3)

    def test_noop_detection(self):
        assert WideningStep({}).is_noop()
        assert WideningStep({Dimension.VISIBILITY: 0}).is_noop()
        assert not WideningStep.uniform(1).is_noop()

    def test_purpose_dimension_rejected(self):
        with pytest.raises(SimulationError):
            WideningStep({Dimension.PURPOSE: 1})

    def test_equality(self):
        assert WideningStep.uniform(1) == WideningStep.uniform(1)


class TestWiden:
    def test_ranks_move(self, policy, taxonomy):
        wider = widen(policy, WideningStep.uniform(1), taxonomy)
        weight = wider.for_attribute("weight")[0]
        assert (weight.tuple.visibility, weight.tuple.granularity, weight.tuple.retention) == (
            3,
            3,
            3,
        )

    def test_clamped_at_ladder_top(self, policy, taxonomy):
        wider = widen(policy, WideningStep.uniform(5), taxonomy)
        age = wider.for_attribute("age")[0]
        assert (age.tuple.visibility, age.tuple.granularity, age.tuple.retention) == (
            4,
            3,
            4,
        )

    def test_negative_step_narrows_and_floors(self, policy, taxonomy):
        narrower = widen(policy, WideningStep.uniform(-10), taxonomy)
        assert all(
            (e.tuple.visibility, e.tuple.granularity, e.tuple.retention)
            == (0, 0, 0)
            for e in narrower
        )

    def test_attribute_scope(self, policy, taxonomy):
        wider = widen(
            policy, WideningStep.uniform(1), taxonomy, attributes=["weight"]
        )
        assert wider.for_attribute("age") == policy.for_attribute("age")

    def test_purpose_scope(self, policy, taxonomy):
        wider = widen(
            policy, WideningStep.uniform(1), taxonomy, purposes=["research"]
        )
        assert wider == policy  # nothing matches

    def test_original_untouched(self, policy, taxonomy):
        widen(policy, WideningStep.uniform(1), taxonomy)
        assert policy.for_attribute("weight")[0].tuple.visibility == 2

    def test_custom_name(self, policy, taxonomy):
        wider = widen(policy, WideningStep.uniform(1), taxonomy, name="v2")
        assert wider.name == "v2"


class TestWideningPath:
    def test_step_zero_is_base(self, policy, taxonomy):
        path = list(widening_path(policy, WideningStep.uniform(1), taxonomy, 3))
        assert path[0][0] == 0
        assert path[0][1] == policy

    def test_path_length(self, policy, taxonomy):
        path = list(widening_path(policy, WideningStep.uniform(1), taxonomy, 3))
        assert [k for k, _ in path] == [0, 1, 2, 3]

    def test_names_carry_step(self, policy, taxonomy):
        path = list(widening_path(policy, WideningStep.uniform(1), taxonomy, 2))
        assert [p.name for _, p in path] == ["base+0", "base+1", "base+2"]

    def test_cumulative_widening(self, policy, taxonomy):
        path = dict(widening_path(policy, WideningStep.uniform(1), taxonomy, 2))
        weight_2 = path[2].for_attribute("weight")[0]
        assert weight_2.tuple.visibility == 4

    def test_saturation(self, policy, taxonomy):
        path = dict(widening_path(policy, WideningStep.uniform(1), taxonomy, 10))
        assert path[10] == path[9]  # fully saturated

    def test_monotone_exposure(self, policy, taxonomy):
        previous = None
        for _, current in widening_path(
            policy, WideningStep.uniform(1), taxonomy, 5
        ):
            if previous is not None:
                for before, after in zip(previous, current):
                    assert after.tuple.dominates(before.tuple)
            previous = current

    def test_noop_step_rejected(self, policy, taxonomy):
        with pytest.raises(SimulationError):
            list(widening_path(policy, WideningStep({}), taxonomy, 3))

    def test_zero_steps_yields_only_base(self, policy, taxonomy):
        path = list(widening_path(policy, WideningStep.uniform(1), taxonomy, 0))
        assert len(path) == 1

"""Provider privacy preferences (Section 4, Eqs. 5-6) and the
implicit-zero-tuple rule (Section 5).

``ProviderPref_i`` is the set of ``<i, a, p>`` triples for one provider;
Eq. 6's restriction to a datum's attribute is
:meth:`ProviderPreferences.for_attribute`.

The paper's implicit rule (directly after Definition 1): when the house
uses a purpose the provider never expressed a preference for on an
attribute the provider supplied, the provider is assumed to prefer to
reveal nothing — the tuple ``<i, a, pr, 0, 0, 0>`` is added.
:func:`effective_preferences` materialises that completion against a given
house policy so the violation indicator and the severity measure both see
identical semantics.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Hashable

from ..exceptions import ValidationError
from .policy import HousePolicy
from .tuples import PreferenceEntry, PrivacyTuple


class ProviderPreferences:
    """All privacy preferences of one data provider (Eq. 5).

    Parameters
    ----------
    provider_id:
        The provider's identifier (any hashable).
    entries:
        :class:`PreferenceEntry` objects or ``(attribute, PrivacyTuple)``
        pairs; pairs are completed with *provider_id*.  Entries carrying a
        different ``provider_id`` are rejected — a preference set speaks for
        exactly one provider.
    attributes_provided:
        The attributes this provider actually supplied data for.  Defaults
        to the attributes mentioned in *entries*.  The implicit-zero rule
        applies only to supplied attributes: a policy on data the provider
        never gave cannot violate them.
    """

    __slots__ = ("_provider_id", "_entries", "_by_attribute", "_attributes_provided")

    def __init__(
        self,
        provider_id: Hashable,
        entries: Iterable[PreferenceEntry | tuple[str, PrivacyTuple]] = (),
        *,
        attributes_provided: Iterable[str] | None = None,
    ) -> None:
        if provider_id is None:
            raise ValidationError("provider_id must not be None")
        normalized: list[PreferenceEntry] = []
        seen: set[PreferenceEntry] = set()
        for entry in entries:
            if isinstance(entry, tuple):
                attribute, privacy_tuple = entry
                entry = PreferenceEntry(
                    provider_id=provider_id,
                    attribute=attribute,
                    tuple=privacy_tuple,
                )
            elif not isinstance(entry, PreferenceEntry):
                raise ValidationError(
                    f"preference entries must be PreferenceEntry or "
                    f"(attribute, PrivacyTuple) pairs, got {type(entry).__name__}"
                )
            if entry.provider_id != provider_id:
                raise ValidationError(
                    f"entry provider {entry.provider_id!r} does not match "
                    f"preference-set provider {provider_id!r}"
                )
            if entry not in seen:
                seen.add(entry)
                normalized.append(entry)
        self._provider_id = provider_id
        self._entries = tuple(normalized)
        by_attribute: dict[str, list[PreferenceEntry]] = {}
        for entry in self._entries:
            by_attribute.setdefault(entry.attribute, []).append(entry)
        self._by_attribute = {
            attribute: tuple(attr_entries)
            for attribute, attr_entries in by_attribute.items()
        }
        if attributes_provided is None:
            self._attributes_provided = frozenset(self._by_attribute)
        else:
            provided = frozenset(attributes_provided)
            missing = set(self._by_attribute) - provided
            if missing:
                raise ValidationError(
                    f"preferences mention attributes not in "
                    f"attributes_provided: {sorted(missing)}"
                )
            self._attributes_provided = provided

    @property
    def provider_id(self) -> Hashable:
        """The provider this preference set belongs to."""
        return self._provider_id

    @property
    def entries(self) -> tuple[PreferenceEntry, ...]:
        """All explicit preference entries, in insertion order."""
        return self._entries

    @property
    def attributes_provided(self) -> frozenset[str]:
        """The attributes the provider supplied data for."""
        return self._attributes_provided

    def __iter__(self) -> Iterator[PreferenceEntry]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ProviderPreferences):
            return NotImplemented
        return (
            self._provider_id == other._provider_id
            and frozenset(self._entries) == frozenset(other._entries)
            and self._attributes_provided == other._attributes_provided
        )

    def __hash__(self) -> int:
        return hash(
            (self._provider_id, frozenset(self._entries), self._attributes_provided)
        )

    def __repr__(self) -> str:
        return (
            f"ProviderPreferences({self._provider_id!r}, "
            f"{len(self._entries)} entries)"
        )

    def attributes(self) -> tuple[str, ...]:
        """Attributes with at least one explicit preference, sorted."""
        return tuple(sorted(self._by_attribute))

    def for_attribute(self, attribute: str) -> tuple[PreferenceEntry, ...]:
        """Equation 6: the restriction ``ProviderPref_i^j``."""
        return self._by_attribute.get(attribute, ())

    def purposes_for(self, attribute: str) -> frozenset[str]:
        """Purposes the provider explicitly covered for *attribute*."""
        return frozenset(e.purpose for e in self.for_attribute(attribute))

    def with_entries(
        self, extra: Iterable[PreferenceEntry | tuple[str, PrivacyTuple]]
    ) -> "ProviderPreferences":
        """A new preference set with *extra* entries appended."""
        return ProviderPreferences(
            self._provider_id,
            list(self._entries) + list(extra),
            attributes_provided=self._attributes_provided
            | {
                e.attribute if isinstance(e, PreferenceEntry) else e[0]
                for e in extra
            },
        )


def effective_preferences(
    preferences: ProviderPreferences,
    policy: HousePolicy,
    *,
    implicit_zero: bool = True,
) -> ProviderPreferences:
    """Complete *preferences* with implicit zero tuples against *policy*.

    For every policy entry ``<a, p'>`` such that the provider supplied data
    for attribute ``a`` but expressed no preference with purpose ``p'[Pr]``
    on ``a``, add the paper's implicit tuple ``<i, a, p'[Pr], 0, 0, 0>``.

    With ``implicit_zero=False`` the preferences are returned unchanged —
    used by tests and ablations to show how silently *ignoring* unexpected
    purposes under-counts violations.
    """
    if not implicit_zero:
        return preferences
    additions: list[PreferenceEntry] = []
    seen: set[tuple[str, str]] = set()
    for entry in policy:
        attribute = entry.attribute
        purpose = entry.purpose
        if attribute not in preferences.attributes_provided:
            continue
        if purpose in preferences.purposes_for(attribute):
            continue
        key = (attribute, purpose)
        if key in seen:
            continue
        seen.add(key)
        additions.append(
            PreferenceEntry(
                provider_id=preferences.provider_id,
                attribute=attribute,
                tuple=PrivacyTuple.zero(purpose),
            )
        )
    if not additions:
        return preferences
    return preferences.with_entries(additions)

"""Unit tests for data-provider default (Definition 4)."""

from __future__ import annotations

import math

import pytest

from repro.core import DefaultModel, provider_default
from repro.exceptions import ValidationError


class TestProviderDefault:
    def test_strict_above_threshold_defaults(self):
        assert provider_default(60.0, 50.0) == 1

    def test_strict_at_threshold_stays(self):
        # The paper's strict inequality: Violation_i > v_i.
        assert provider_default(50.0, 50.0) == 0

    def test_below_threshold_stays(self):
        assert provider_default(80.0, 100.0) == 0

    def test_non_strict_at_threshold_defaults(self):
        assert provider_default(50.0, 50.0, strict=False) == 1

    def test_zero_violation_never_defaults(self):
        assert provider_default(0.0, 0.0) == 0
        assert provider_default(0.0, 0.0, strict=False) == 1  # edge semantics

    def test_negative_violation_rejected(self):
        with pytest.raises(ValidationError):
            provider_default(-1.0, 10.0)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValidationError):
            provider_default(1.0, -10.0)


class TestDefaultModel:
    def test_explicit_threshold_used(self):
        model = DefaultModel({"ted": 50.0})
        assert model.threshold("ted") == 50.0
        assert model.defaults("ted", 60.0) == 1
        assert model.defaults("ted", 50.0) == 0

    def test_unknown_provider_never_defaults_by_default(self):
        model = DefaultModel({"ted": 50.0})
        assert model.threshold("stranger") == math.inf
        assert model.defaults("stranger", 1e12) == 0

    def test_default_threshold_override(self):
        model = DefaultModel({}, default_threshold=5.0)
        assert model.defaults("anyone", 6.0) == 1
        assert model.defaults("anyone", 5.0) == 0

    def test_known_providers(self):
        model = DefaultModel({"a": 1.0, "b": 2.0})
        assert model.known_providers() == frozenset({"a", "b"})

    def test_with_threshold_copy(self):
        model = DefaultModel({"a": 1.0})
        extended = model.with_threshold("b", 2.0)
        assert extended.threshold("b") == 2.0
        assert model.threshold("b") == math.inf

    def test_with_strictness_ablation(self):
        model = DefaultModel({"a": 50.0})
        loose = model.with_strictness(False)
        assert model.defaults("a", 50.0) == 0
        assert loose.defaults("a", 50.0) == 1
        assert loose.strict is False

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValidationError):
            DefaultModel({"a": -1.0})

    def test_strict_must_be_bool(self):
        with pytest.raises(ValidationError):
            DefaultModel({}, strict=1)  # type: ignore[arg-type]

    def test_evaluate_over_population(self, paper_population, paper_policy):
        model = paper_population.default_model()
        outcomes = model.evaluate(
            paper_population.preference_sets(),
            paper_policy,
            paper_population.sensitivity_model(),
        )
        assert outcomes == {"Alice": 0, "Ted": 1, "Bob": 0}

    def test_paper_bob_boundary(self):
        # Bob's 80 < 100 keeps him in; with a threshold of exactly 80 the
        # strict inequality still keeps him in.
        model = DefaultModel({"Bob": 80.0})
        assert model.defaults("Bob", 80.0) == 0
        assert model.with_strictness(False).defaults("Bob", 80.0) == 1

"""Unit tests for sensitivity factors (Eqs. 10-11)."""

from __future__ import annotations

import pytest

from repro.core import (
    AttributeSensitivities,
    Dimension,
    DimensionSensitivity,
    ProviderSensitivity,
    SensitivityModel,
)
from repro.exceptions import ValidationError


class TestDimensionSensitivity:
    def test_defaults_are_neutral(self):
        s = DimensionSensitivity()
        assert s.value == 1.0
        for dim in (Dimension.VISIBILITY, Dimension.GRANULARITY, Dimension.RETENTION):
            assert s.dimension_weight(dim) == 1.0

    def test_from_sequence_matches_paper_ordering(self):
        # Ted's sigma in Table 1: <s, s[V], s[G], s[R]> = <3, 1, 5, 2>
        s = DimensionSensitivity.from_sequence((3.0, 1.0, 5.0, 2.0))
        assert s.value == 3.0
        assert s[Dimension.VISIBILITY] == 1.0
        assert s[Dimension.GRANULARITY] == 5.0
        assert s[Dimension.RETENTION] == 2.0

    def test_purpose_weight_raises(self):
        with pytest.raises(ValidationError):
            DimensionSensitivity().dimension_weight(Dimension.PURPOSE)

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            DimensionSensitivity(value=-1.0)
        with pytest.raises(ValidationError):
            DimensionSensitivity(granularity=-0.5)

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            DimensionSensitivity(value=float("nan"))

    def test_zero_weights_allowed(self):
        s = DimensionSensitivity(value=0.0)
        assert s.value == 0.0

    def test_neutral_classmethod(self):
        assert DimensionSensitivity.neutral() == DimensionSensitivity()


class TestProviderSensitivity:
    def test_missing_attribute_is_neutral(self):
        sigma = ProviderSensitivity("alice")
        assert sigma.for_attribute("anything") == DimensionSensitivity.neutral()

    def test_explicit_attribute_returned(self):
        record = DimensionSensitivity(value=3.0)
        sigma = ProviderSensitivity("alice", {"weight": record})
        assert sigma.for_attribute("weight") == record

    def test_none_provider_rejected(self):
        with pytest.raises(ValidationError):
            ProviderSensitivity(None)

    def test_non_record_rejected(self):
        with pytest.raises(ValidationError):
            ProviderSensitivity("alice", {"weight": 3.0})  # type: ignore[dict-item]


class TestAttributeSensitivities:
    def test_default_weight_is_one(self):
        sigma = AttributeSensitivities({"weight": 4.0})
        assert sigma.weight("weight") == 4.0
        assert sigma.weight("age") == 1.0

    def test_subscript(self):
        sigma = AttributeSensitivities({"weight": 4.0})
        assert sigma["weight"] == 4.0

    def test_contains_only_explicit(self):
        sigma = AttributeSensitivities({"weight": 4.0})
        assert "weight" in sigma
        assert "age" not in sigma

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            AttributeSensitivities({"weight": -1.0})

    def test_as_dict_copies(self):
        sigma = AttributeSensitivities({"weight": 4.0})
        d = sigma.as_dict()
        d["weight"] = 99.0
        assert sigma.weight("weight") == 4.0

    def test_equality(self):
        assert AttributeSensitivities({"a": 2.0}) == AttributeSensitivities({"a": 2.0})
        assert AttributeSensitivities({"a": 2.0}) != AttributeSensitivities({"a": 3.0})


class TestSensitivityModel:
    def test_neutral_model_all_ones(self):
        model = SensitivityModel.neutral()
        assert model.attribute_weight("x") == 1.0
        assert model.datum("anyone", "x") == DimensionSensitivity.neutral()

    def test_accepts_plain_mapping_for_attributes(self):
        model = SensitivityModel({"weight": 4.0})
        assert model.attribute_weight("weight") == 4.0

    def test_provider_lookup(self):
        sigma = ProviderSensitivity(
            "ted", {"weight": DimensionSensitivity(value=3.0)}
        )
        model = SensitivityModel(None, {"ted": sigma})
        assert model.datum("ted", "weight").value == 3.0
        assert model.datum("ted", "other") == DimensionSensitivity.neutral()
        assert model.datum("alice", "weight") == DimensionSensitivity.neutral()

    def test_mismatched_key_rejected(self):
        sigma = ProviderSensitivity("ted")
        with pytest.raises(ValidationError):
            SensitivityModel(None, {"alice": sigma})

    def test_non_record_provider_rejected(self):
        with pytest.raises(ValidationError):
            SensitivityModel(None, {"ted": 1.0})  # type: ignore[dict-item]

    def test_with_provider_returns_new_model(self):
        model = SensitivityModel.neutral()
        sigma = ProviderSensitivity(
            "ted", {"weight": DimensionSensitivity(value=9.0)}
        )
        extended = model.with_provider(sigma)
        assert extended.datum("ted", "weight").value == 9.0
        assert model.datum("ted", "weight").value == 1.0

    def test_explicit_providers_copy(self):
        sigma = ProviderSensitivity("ted")
        model = SensitivityModel(None, {"ted": sigma})
        explicit = model.explicit_providers()
        assert explicit == {"ted": sigma}
        explicit.clear()
        assert model.explicit_providers() == {"ted": sigma}

"""Healthcare scenario: a clinic collecting demographic and clinical data.

The paper's introduction motivates the model with healthcare among other
domains; Westin (the paper's ref [21]) ranks health and financial
information as the most sensitive attribute classes.  This scenario
encodes that ranking in ``Sigma``: diagnosis and income carry the highest
attribute sensitivities, demographics the lowest.

The house's baseline policy is deliberately conservative (house-only
visibility, partial granularity, short-term retention for treatment) so
that, as in Section 9's setup, the starting point causes no or few
defaults and the widening sweep starts from a healthy population.
"""

from __future__ import annotations

from ..core.policy import HousePolicy
from ..simulation.population import (
    PopulationSpec,
    WestinSegment,
    generate_population,
)
from ..taxonomy.builder import Taxonomy, TaxonomyBuilder
from .scenario import Scenario

#: Attribute -> social sensitivity ``Sigma^a`` (Westin-style ranking).
HEALTHCARE_ATTRIBUTES: dict[str, float] = {
    "age": 1.0,
    "weight": 2.0,
    "diagnosis": 5.0,
    "medication": 4.0,
    "income": 5.0,
}

#: Purposes a clinic realistically collects for.
HEALTHCARE_PURPOSES: tuple[str, ...] = ("treatment", "billing", "research")


def healthcare_taxonomy() -> Taxonomy:
    """Clinic-specific ladders, deeper than the canonical ones.

    The extra visibility and retention rungs give widening sweeps several
    steps of runway before the ladders saturate, which is what produces the
    multi-step utility curves of the Section 9 benchmarks.
    """
    return (
        TaxonomyBuilder()
        .with_purposes(HEALTHCARE_PURPOSES)
        .with_visibility(
            [
                "none",
                "owner",
                "clinic",
                "hospital-network",
                "researchers",
                "insurers",
                "public",
            ]
        )
        .with_granularity(["none", "existential", "category", "range", "specific"])
        .with_retention(
            [
                "none",
                "visit",
                "month",
                "year",
                "5-years",
                "10-years",
                "indefinite",
            ]
        )
        .build()
    )


def healthcare_policy(taxonomy: Taxonomy | None = None) -> HousePolicy:
    """The clinic's conservative baseline policy."""
    taxonomy = taxonomy if taxonomy is not None else healthcare_taxonomy()
    entries = []
    for attribute in HEALTHCARE_ATTRIBUTES:
        # Treatment needs specific values inside the clinic, kept a year.
        entries.append(
            (
                attribute,
                taxonomy.tuple("treatment", "clinic", "specific", "year"),
            )
        )
        # Billing needs only ranges, kept for the month's cycle.
        entries.append(
            (
                attribute,
                taxonomy.tuple("billing", "clinic", "range", "month"),
            )
        )
    # Research sees coarse data only, but keeps it long.
    entries.append(
        (
            "diagnosis",
            taxonomy.tuple("research", "clinic", "existential", "5-years"),
        )
    )
    entries.append(
        ("age", taxonomy.tuple("research", "clinic", "category", "5-years"))
    )
    return HousePolicy(entries, name="clinic-baseline")


def healthcare_segments() -> tuple[WestinSegment, ...]:
    """Westin segments with thresholds calibrated to this scenario's severity scale.

    The calibration targets gradual attrition: fundamentalists mostly leave
    within the first widening step or two, pragmatists spread their exits
    over the middle of the sweep, the unconcerned effectively never leave.
    """
    return (
        WestinSegment(
            name="fundamentalist",
            fraction=0.25,
            tightness=0.7,
            value_sensitivity=(2.0, 4.0),
            dimension_sensitivity=(2.0, 5.0),
            threshold=(800.0, 2600.0),
            headroom=(0, 0),
        ),
        WestinSegment(
            name="pragmatist",
            fraction=0.57,
            tightness=0.4,
            value_sensitivity=(1.0, 3.0),
            dimension_sensitivity=(1.0, 3.0),
            threshold=(250.0, 1400.0),
            headroom=(0, 2),
        ),
        WestinSegment(
            name="unconcerned",
            fraction=0.18,
            tightness=0.1,
            value_sensitivity=(0.5, 1.5),
            dimension_sensitivity=(0.5, 1.5),
            threshold=(400.0, 2000.0),
            headroom=(1, 4),
        ),
    )


def healthcare_scenario(
    n_providers: int = 300, *, seed: int = 7
) -> Scenario:
    """A full clinic scenario: taxonomy + policy + Westin population."""
    taxonomy = healthcare_taxonomy()
    policy = healthcare_policy(taxonomy)
    spec = PopulationSpec(
        taxonomy=taxonomy,
        attributes=HEALTHCARE_ATTRIBUTES,
        n_providers=n_providers,
        segments=healthcare_segments(),
        seed=seed,
        id_prefix="patient-",
        anchor_policy=policy,
    )
    return Scenario(
        name="healthcare",
        taxonomy=taxonomy,
        policy=policy,
        population=generate_population(spec),
        per_provider_utility=10.0,
        extra_utility_per_step=2.0,
    )

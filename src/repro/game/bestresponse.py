"""The house's one-shot best response to a known population.

With full information (the house can simulate every widening level before
committing — which is precisely what the violation model enables), the
rational house plays the level maximising future utility.  The best
response is read off an expansion sweep; ties break toward the *narrower*
policy, since equal utility at less exposure weakly dominates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.policy import HousePolicy
from ..core.population import Population
from ..exceptions import GameError
from ..simulation.scenario import ExpansionSweep, SweepRow, run_expansion_sweep
from ..simulation.widening import WideningStep
from ..taxonomy.builder import Taxonomy


@dataclass(frozen=True, slots=True)
class BestResponse:
    """The utility-maximising widening level and its evidence."""

    row: SweepRow
    sweep: ExpansionSweep

    @property
    def step(self) -> int:
        """The chosen widening level (0 = keep the base policy)."""
        return self.row.step

    @property
    def stays_at_base(self) -> bool:
        """True when no widening is profitable at all."""
        return self.row.step == 0

    def __str__(self) -> str:
        return (
            f"best response: widen {self.row.step} step(s) "
            f"(utility {self.row.utility_future:g}, "
            f"N {self.row.n_current} -> {self.row.n_future})"
        )


def best_response(
    population: Population,
    base_policy: HousePolicy,
    taxonomy: Taxonomy,
    *,
    step: WideningStep | None = None,
    max_steps: int = 8,
    per_provider_utility: float = 1.0,
    extra_utility_per_step: float = 0.25,
) -> BestResponse:
    """Compute the house's best widening level against *population*.

    Runs a full sweep and picks the utility-maximising row, breaking ties
    toward fewer steps.
    """
    sweep = run_expansion_sweep(
        population,
        base_policy,
        taxonomy,
        step=step,
        max_steps=max_steps,
        per_provider_utility=per_provider_utility,
        extra_utility_per_step=extra_utility_per_step,
        scenario_name="best-response",
    )
    if not sweep.rows:
        raise GameError("best response over an empty sweep")
    chosen = max(sweep.rows, key=lambda row: (row.utility_future, -row.step))
    return BestResponse(row=chosen, sweep=sweep)

"""Estimating the model's unobservables from behaviour (Section 10).

The paper's legacy-systems discussion: "in the absence of explicit
tracking of providers' privacy preferences or knowledge of the specific
values ``v_i`` at which data providers default, the model identifies the
quantities that require estimation.  Long-term observation of a particular
house and its population of users ... can be used to identify the number
of users who will default as a house expands its privacy policy.  This in
turn can be used to empirically construct a cumulative distribution
function of the number of defaults..."

This package implements that programme:

* :mod:`repro.estimation.observation` — turn a widening history into the
  censored observations a house actually sees: *who left after which
  expansion* (never the thresholds themselves);
* :mod:`repro.estimation.thresholds` — interval-censored estimation of the
  per-provider thresholds ``v_i`` and the population's default-fraction
  curve as a function of severity;
* :mod:`repro.estimation.forecast` — forecast the default count of a
  *candidate* policy from the estimated curve, without ever seeing a
  threshold — the quantity Section 9's economics needs.
"""

from .observation import DefaultObservation, observe_widening_history
from .thresholds import ThresholdEstimate, ThresholdEstimator
from .forecast import DefaultForecast, forecast_defaults

__all__ = [
    "DefaultObservation",
    "observe_widening_history",
    "ThresholdEstimate",
    "ThresholdEstimator",
    "DefaultForecast",
    "forecast_defaults",
]

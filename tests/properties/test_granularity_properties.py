"""Property-based tests for granularity degradation.

The safety invariant: coarsening must never reveal *more* as the granted
rank decreases — formalised as "the set of raw values consistent with the
rendering never shrinks when the rank drops".
"""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.storage import EXISTENCE_MARKER, ValueDegrader

numeric_values = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
widths = st.floats(min_value=0.01, max_value=1e3, allow_nan=False)


@st.composite
def degraders(draw):
    exact_rank = draw(st.integers(2, 5))
    bucket_ranks = draw(
        st.sets(st.integers(1, exact_rank - 1), max_size=exact_rank - 1)
    )
    return ValueDegrader(
        exact_rank,
        bucket_widths={rank: draw(widths) for rank in bucket_ranks},
    )


class TestDegradationProperties:
    @given(degrader=degraders(), value=numeric_values)
    def test_rank_zero_always_none(self, degrader, value):
        assert degrader.degrade(str(value), 0) is None

    @given(degrader=degraders(), value=numeric_values)
    def test_exact_rank_is_identity(self, degrader, value):
        raw = str(value)
        assert degrader.degrade(raw, degrader.exact_rank) == raw

    @given(degrader=degraders(), value=numeric_values, rank=st.integers(0, 6))
    def test_none_input_stays_none(self, degrader, value, rank):
        assert degrader.degrade(None, rank) is None

    @given(degrader=degraders(), value=numeric_values, rank=st.integers(1, 6))
    def test_bucket_contains_value(self, degrader, value, rank):
        rendered = degrader.degrade(str(value), rank)
        if rendered is None or rendered == EXISTENCE_MARKER:
            return
        if rank >= degrader.exact_rank:
            assert rendered == str(value)
            return
        low_text, _, high_text = rendered.partition("..")
        low, high = float(low_text), float(high_text)
        assert low <= value < high or value == low

    @given(degrader=degraders(), value=numeric_values)
    def test_information_never_increases_as_rank_drops(self, degrader, value):
        """Rendering classes ordered by information content:
        None < existence marker < bucket < raw.  Dropping the rank must
        never move up this order."""

        def info(rendered: str | None, rank: int) -> int:
            if rendered is None:
                return 0
            if rendered == EXISTENCE_MARKER:
                return 1
            if rank >= degrader.exact_rank:
                return 3
            return 2

        raw = str(value)
        levels = [
            info(degrader.degrade(raw, rank), rank)
            for rank in range(0, degrader.exact_rank + 1)
        ]
        assert levels == sorted(levels)

    @given(degrader=degraders(), rank=st.integers(1, 6))
    def test_non_numeric_never_leaks_through_buckets(self, degrader, rank):
        rendered = degrader.degrade("secret-string", rank)
        if rank >= degrader.exact_rank:
            assert rendered == "secret-string"
        else:
            assert rendered in (EXISTENCE_MARKER, None)

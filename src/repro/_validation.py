"""Shared argument-checking helpers.

Small, dependency-free predicates used across the library so that error
messages stay uniform.  All helpers raise :class:`~repro.exceptions.ValidationError`
(or a subclass) on failure and return the validated value on success, which
lets callers validate inline::

    self.alpha = check_probability(alpha, "alpha")
"""

from __future__ import annotations

from collections.abc import Iterable
from numbers import Integral, Real

from .exceptions import ValidationError


def check_type(value: object, expected: type | tuple[type, ...], name: str) -> object:
    """Return *value* if it is an instance of *expected*, else raise."""
    if not isinstance(value, expected):
        expected_names = (
            expected.__name__
            if isinstance(expected, type)
            else " | ".join(t.__name__ for t in expected)
        )
        raise ValidationError(
            f"{name} must be {expected_names}, got {type(value).__name__}: {value!r}"
        )
    return value


def check_non_empty_str(value: object, name: str) -> str:
    """Return *value* if it is a non-empty string (after stripping)."""
    check_type(value, str, name)
    if not value.strip():  # type: ignore[union-attr]
        raise ValidationError(f"{name} must be a non-empty string")
    return value  # type: ignore[return-value]


def check_int(value: object, name: str, *, minimum: int | None = None) -> int:
    """Return *value* as ``int`` if integral and >= *minimum* (when given).

    Booleans are rejected: ``True`` silently behaving as a privacy level of 1
    has bitten real policy documents, so we treat it as a type error.
    """
    if isinstance(value, bool) or not isinstance(value, Integral):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    result = int(value)
    if minimum is not None and result < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {result}")
    return result


def check_real(value: object, name: str, *, minimum: float | None = None) -> float:
    """Return *value* as ``float`` if real-valued and >= *minimum* (when given)."""
    if isinstance(value, bool) or not isinstance(value, Real):
        raise ValidationError(f"{name} must be a real number, got {value!r}")
    result = float(value)
    if result != result:  # NaN
        raise ValidationError(f"{name} must not be NaN")
    if minimum is not None and result < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {result}")
    return result


def check_probability(value: object, name: str) -> float:
    """Return *value* as a float in the closed interval [0, 1]."""
    result = check_real(value, name, minimum=0.0)
    if result > 1.0:
        raise ValidationError(f"{name} must be <= 1, got {result}")
    return result


def check_unique(items: Iterable[object], name: str) -> list[object]:
    """Return *items* as a list after verifying there are no duplicates."""
    result = list(items)
    seen: set[object] = set()
    for item in result:
        if item in seen:
            raise ValidationError(f"duplicate {name}: {item!r}")
        seen.add(item)
    return result

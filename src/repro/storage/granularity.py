"""Granularity-aware value rendering.

The taxonomy's granularity axis is about *what the value looks like* when
revealed: nothing, mere existence, a coarsened form (a weight **range**
rather than the weight — the paper's own example), or the specific atomic
value.  The earlier study the paper builds on (Williams & Barker, ref
[22]) showed providers share *more* when they can share coarser; this
module makes that operational: a :class:`ValueDegrader` renders a stored
datum at the granularity rank an access request was granted, so the gate
returns data already coarsened to the authorised level.

Rank semantics (relative to the attribute's ladder):

* rank 0 — reveal nothing (``None``);
* ranks below ``exact_rank`` — coarsened: a configured numeric bucket
  (``"60..69"``), a category label, or the bare existence marker when no
  coarsening is configured for that rank;
* ``exact_rank`` and above — the raw value.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Mapping

from .._validation import check_int, check_real
from ..exceptions import ValidationError

#: The marker returned when only existence may be revealed.
EXISTENCE_MARKER = "present"


class ValueDegrader:
    """Render stored values at a requested granularity rank.

    Parameters
    ----------
    exact_rank:
        The ladder rank at (and above) which the raw value is returned.
    bucket_widths:
        Optional numeric coarsening per rank: ``{rank: width}`` renders a
        numeric value as the half-open bucket ``"lo..hi"`` containing it.
    category_maps:
        Optional categorical coarsening per rank: ``{rank: callable}``
        mapping the raw string to a label (e.g. an age band or a diagnosis
        chapter).  Takes precedence over bucket widths at the same rank.
    """

    def __init__(
        self,
        exact_rank: int,
        *,
        bucket_widths: Mapping[int, float] | None = None,
        category_maps: Mapping[int, Callable[[str], str]] | None = None,
    ) -> None:
        self._exact_rank = check_int(exact_rank, "exact_rank", minimum=1)
        self._bucket_widths: dict[int, float] = {}
        for rank, width in (bucket_widths or {}).items():
            rank = check_int(rank, "bucket rank", minimum=1)
            if rank >= self._exact_rank:
                raise ValidationError(
                    f"bucket rank {rank} must be below exact_rank "
                    f"{self._exact_rank}"
                )
            width = check_real(width, f"bucket width for rank {rank}")
            if width <= 0:
                raise ValidationError("bucket widths must be positive")
            self._bucket_widths[rank] = width
        self._category_maps: dict[int, Callable[[str], str]] = {}
        for rank, mapper in (category_maps or {}).items():
            rank = check_int(rank, "category rank", minimum=1)
            if rank >= self._exact_rank:
                raise ValidationError(
                    f"category rank {rank} must be below exact_rank "
                    f"{self._exact_rank}"
                )
            if not callable(mapper):
                raise ValidationError("category maps must be callables")
            self._category_maps[rank] = mapper

    @property
    def exact_rank(self) -> int:
        """The rank at which raw values are released."""
        return self._exact_rank

    def degrade(self, raw: str | None, rank: int) -> str | None:
        """Render *raw* at granularity *rank*.

        ``None`` stays ``None`` at every rank (absent data reveals nothing
        beyond what rank-0 would).  A rank without its own configured
        coarsening uses the nearest configured coarsening *below* it —
        revealing coarser than granted is always safe, and this keeps the
        information content monotone in the rank (property-tested).
        """
        rank = check_int(rank, "rank", minimum=0)
        if raw is None or rank == 0:
            return None
        if rank >= self._exact_rank:
            return raw
        effective = self._effective_coarsening_rank(rank)
        if effective is None:
            return EXISTENCE_MARKER
        mapper = self._category_maps.get(effective)
        if mapper is not None:
            return str(mapper(raw))
        return self._bucket(raw, self._bucket_widths[effective])

    def _effective_coarsening_rank(self, rank: int) -> int | None:
        """The highest configured coarsening rank at most *rank*."""
        configured = [
            r
            for r in (*self._category_maps, *self._bucket_widths)
            if r <= rank
        ]
        return max(configured) if configured else None

    @staticmethod
    def _bucket(raw: str, width: float) -> str:
        """The half-open numeric bucket ``"lo..hi"`` containing *raw*.

        Non-numeric values fall back to the existence marker — coarsening
        must never leak more than the configured level.
        """
        try:
            value = float(raw)
        except (TypeError, ValueError):
            return EXISTENCE_MARKER
        # Floor division on floats can land one bucket off (1.0 // 0.01 is
        # 99.0); compute the index, then nudge until the half-open bucket
        # genuinely contains the value.
        index = math.floor(value / width)
        while index * width > value:
            index -= 1
        while (index + 1) * width <= value:
            index += 1
        low = index * width
        high = (index + 1) * width
        if width == int(width) and low == int(low) and high == int(high):
            return f"{int(low)}..{int(high)}"
        # repr round-trips floats exactly; %g-style rounding could shift a
        # boundary past the value it is supposed to bracket.
        return f"{low!r}..{high!r}"


def numeric_degrader(
    exact_rank: int, bucket_widths: Mapping[int, float]
) -> ValueDegrader:
    """Convenience factory for purely numeric attributes."""
    return ValueDegrader(exact_rank, bucket_widths=bucket_widths)

"""Checkpointed, resumable versions of the long-running workloads.

Each runner wraps an existing workload — the Section 9 widening sweep,
the multi-round default dynamics, the Section 10 forecast replay — and
checkpoints one :class:`~repro.resilience.journal.RunJournal` step per
unit of work (sweep level, dynamics round, observed history policy).  A
run killed between steps resumes from its journal and produces output
**bit-for-bit identical** to an uninterrupted run, because:

* completed steps are *replayed from the journal*, never re-evaluated;
* live steps are computed by the same shared builders the uninterrupted
  runners use (:func:`~repro.simulation.scenario.build_sweep_row`,
  :func:`~repro.simulation.dynamics.build_round_outcome`,
  :func:`~repro.estimation.observation.apply_policy_observation`);
* the journal pins an input **fingerprint** — resuming against different
  inputs is refused with a coded error instead of mixing two runs.

Provider ids must survive a JSON round trip (strings, ints) for a run to
be journalable; this is checked up front.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Iterable, Sequence
from typing import Any, Hashable

from ..core.policy import HousePolicy
from ..core.population import Population
from ..estimation.forecast import DefaultForecast, forecast_defaults
from ..estimation.observation import (
    apply_policy_observation,
    observations_from_state,
)
from ..estimation.thresholds import ThresholdEstimator
from ..exceptions import ResilienceError
from ..obs import active_observer, span
from ..perf import (
    BatchViolationEngine,
    SupervisedExecutor,
    make_batch_engine,
    resolve_workers,
)
from ..policy_lang.serializer import policy_to_dict, preferences_to_dict
from ..policy_lang.serializer import sensitivities_to_dict
from ..simulation.dynamics import (
    RoundOutcome,
    build_round_outcome,
    round_policy,
)
from ..simulation.scenario import ExpansionSweep, SweepRow, build_sweep_row
from ..simulation.widening import WideningStep, widening_path
from ..taxonomy.builder import Taxonomy
from .faults import active_plan
from .guardrail import GuardedBatchEngine
from .journal import RunJournal

# ---------------------------------------------------------------------------
# fingerprints
# ---------------------------------------------------------------------------


def _canonical_json(value: Any) -> str:
    try:
        return json.dumps(value, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as error:
        raise ResilienceError(
            f"run inputs are not JSON-canonicalizable: {error}"
        ) from error


def population_fingerprint(population: Population) -> str:
    """A content hash over a population's model-relevant state.

    Covers provider order, ids, preferences, supplied attributes,
    thresholds, segments, and the population's sensitivity model — every
    input the violation engines read.
    """
    document = {
        "providers": [
            {
                "preferences": preferences_to_dict(provider.preferences),
                "threshold": provider.threshold,
                "segment": provider.segment,
            }
            for provider in population
        ],
        "sensitivities": sensitivities_to_dict(population.sensitivity_model()),
    }
    return hashlib.sha256(_canonical_json(document).encode("utf-8")).hexdigest()


def journal_fingerprint(
    kind: str,
    *,
    population: Population,
    policies: Sequence[HousePolicy],
    params: dict[str, Any],
    mutation_epoch: int = 0,
) -> str:
    """The input fingerprint a journal pins its run to.

    Hashes the run kind, the population fingerprint, every input policy
    (serialized with raw ranks, so taxonomy level names cannot alias),
    the run parameters, and the **mutation epoch** — the
    :attr:`~repro.perf.delta.MutableBatchEngine.epoch` the population
    corresponds to.  A population snapshot taken after in-place engine
    mutations carries a different epoch than the run start, so a journal
    recorded against one cannot silently resume against the other even
    when the provider content happens to hash alike.
    """
    document = {
        "kind": kind,
        "population": population_fingerprint(population),
        "policies": [policy_to_dict(policy) for policy in policies],
        "params": params,
        "mutation_epoch": int(mutation_epoch),
    }
    return hashlib.sha256(_canonical_json(document).encode("utf-8")).hexdigest()


def _check_journalable_ids(population: Population) -> None:
    for provider_id in population.ids():
        try:
            restored = json.loads(json.dumps(provider_id))
        except (TypeError, ValueError):
            restored = None
        if restored != provider_id:
            raise ResilienceError(
                f"provider id {provider_id!r} does not survive a JSON round "
                f"trip; journaled runs need string or integer ids"
            )


def _step_payload(step: WideningStep) -> dict[str, int]:
    return {dim.value: delta for dim, delta in sorted(
        step.deltas.items(), key=lambda item: item[0].value
    )}


def _scope_payload(values: Iterable[str] | None) -> list[str] | None:
    return None if values is None else sorted(values)


def _fire(site: str) -> None:
    plan = active_plan()
    if plan is not None:
        plan.check(site)


def _make_engine(
    population: Population,
    *,
    implicit_zero: bool,
    guarded: bool,
    workers: int = 1,
    worker_faults: tuple = (),
    fault_seed: int = 0,
    mutable: bool = False,
):
    """The engine for a resumable runner's live steps.

    ``mutable=True`` (the dynamics runner) returns the churn-capable
    facade from :func:`~repro.perf.parallel.make_batch_engine`, so
    departures tombstone in place instead of rebuilding.  The sweep
    runner keeps the bare engines: its population is static and the
    shard-checkpoint path needs the supervisor's sharded surface.
    """
    if guarded:
        return GuardedBatchEngine(
            population, implicit_zero=implicit_zero, workers=workers
        )
    if mutable:
        return make_batch_engine(
            population, workers=workers, implicit_zero=implicit_zero
        )
    if resolve_workers(workers) > 1:
        return SupervisedExecutor(
            population,
            workers=workers,
            implicit_zero=implicit_zero,
            worker_faults=worker_faults,
            fault_seed=fault_seed,
        )
    return BatchViolationEngine(population, implicit_zero=implicit_zero)


# ---------------------------------------------------------------------------
# sweep
# ---------------------------------------------------------------------------


def _shard_payload(
    step: int, lo: int, hi: int, violations: Any, counts: Any
) -> dict[str, Any]:
    """One completed shard of a parallel sweep level, journal-ready.

    JSON floats round-trip exactly (``repr`` is the shortest round-trip
    form), so restoring these arrays on resume reproduces the worker's
    output bit-for-bit.
    """
    return {
        "kind": "shard",
        "step": int(step),
        "lo": int(lo),
        "hi": int(hi),
        "violations": [float(value) for value in violations],
        "counts": [float(value) for value in counts],
    }


def _split_sweep_payloads(
    payloads: Sequence[dict[str, Any]],
) -> tuple[list[dict[str, Any]], dict[int, dict[tuple[int, int], tuple]]]:
    """Separate journaled sweep levels from shard checkpoints.

    Row payloads (no ``kind`` tag, the only shape journals held before
    shard-level checkpointing existed) stay in order; shard payloads are
    grouped by sweep level and keyed by their ``(lo, hi)`` bounds.
    """
    rows: list[dict[str, Any]] = []
    shards: dict[int, dict[tuple[int, int], tuple]] = {}
    for payload in payloads:
        if payload.get("kind") == "shard":
            level = shards.setdefault(int(payload["step"]), {})
            level[(int(payload["lo"]), int(payload["hi"]))] = (
                payload["violations"],
                payload["counts"],
            )
        else:
            rows.append(payload)
    return rows, shards


def _sweep_row_payload(row: SweepRow) -> dict[str, Any]:
    return {
        "step": row.step,
        "policy_name": row.policy_name,
        "n_current": row.n_current,
        "n_future": row.n_future,
        "n_violated": row.n_violated,
        "violation_probability": row.violation_probability,
        "default_probability": row.default_probability,
        "total_violations": row.total_violations,
        "extra_utility": row.extra_utility,
        "utility_current": row.utility_current,
        "utility_future": row.utility_future,
        "break_even_extra_utility": row.break_even_extra_utility,
        "justified": row.justified,
        "defaulted_providers": list(row.defaulted_providers),
    }


def _sweep_row_from_payload(payload: dict[str, Any]) -> SweepRow:
    return SweepRow(
        step=payload["step"],
        policy_name=payload["policy_name"],
        n_current=payload["n_current"],
        n_future=payload["n_future"],
        n_violated=payload["n_violated"],
        violation_probability=payload["violation_probability"],
        default_probability=payload["default_probability"],
        total_violations=payload["total_violations"],
        extra_utility=payload["extra_utility"],
        utility_current=payload["utility_current"],
        utility_future=payload["utility_future"],
        break_even_extra_utility=payload["break_even_extra_utility"],
        justified=payload["justified"],
        defaulted_providers=tuple(payload["defaulted_providers"]),
    )


def resumable_sweep(
    population: Population,
    base_policy: HousePolicy,
    taxonomy: Taxonomy,
    *,
    journal_path: str,
    step: WideningStep | None = None,
    max_steps: int = 5,
    per_provider_utility: float = 1.0,
    extra_utility_per_step: float = 0.25,
    attributes: Iterable[str] | None = None,
    purposes: Iterable[str] | None = None,
    scenario_name: str = "expansion-sweep",
    implicit_zero: bool = True,
    guarded: bool = False,
    workers: int = 1,
    worker_faults: tuple = (),
    fault_seed: int = 0,
) -> ExpansionSweep:
    """A widening sweep that checkpoints every level to *journal_path*.

    Creates the journal on first call; called again after an
    interruption it resumes, re-evaluating nothing already recorded.
    The returned :class:`ExpansionSweep` is bit-for-bit equal to what
    :func:`~repro.simulation.scenario.run_expansion_sweep` returns
    uninterrupted with the same arguments.

    With ``guarded=True`` live steps are evaluated through the
    :class:`~repro.resilience.guardrail.GuardedBatchEngine`.

    With ``workers > 1`` (or 0 = auto) live steps fan out over the
    supervised worker pool
    (:class:`~repro.perf.supervisor.SupervisedExecutor`) and the journal
    checkpoints **per shard** as well as per level: a run killed in the
    middle of a level resumes with that level's completed shards
    restored from the journal and only the remainder re-evaluated —
    still bit-for-bit, because journaled floats round-trip exactly and
    shards merge in deterministic order.  The worker count is *not* part
    of the journal fingerprint: a sweep journaled with ``--workers 4``
    may resume with any worker count (journaled shard results are reused
    only where their bounds match the current shard layout; others are
    recomputed to identical values).  ``worker_faults``/``fault_seed``
    are the chaos hooks, passed through to the supervisor.
    """
    if step is None:
        step = WideningStep.uniform(1)
    _check_journalable_ids(population)
    attributes = None if attributes is None else tuple(attributes)
    purposes = None if purposes is None else tuple(purposes)
    params: dict[str, Any] = {
        "max_steps": max_steps,
        "per_provider_utility": per_provider_utility,
        "extra_utility_per_step": extra_utility_per_step,
        "step": _step_payload(step),
        "attributes": _scope_payload(attributes),
        "purposes": _scope_payload(purposes),
        "implicit_zero": implicit_zero,
        "scenario_name": scenario_name,
    }
    fingerprint = journal_fingerprint(
        "sweep", population=population, policies=[base_policy], params=params
    )
    with RunJournal.resume_or_create(
        journal_path, kind="sweep", fingerprint=fingerprint, params=params
    ) as journal, span(
        "resume.sweep", journal=journal_path, max_steps=max_steps
    ):
        row_payloads, shard_payloads = _split_sweep_payloads(
            journal.payloads()
        )
        rows = [_sweep_row_from_payload(p) for p in row_payloads]
        obs = active_observer()
        if obs is not None and rows:
            obs.inc("resume.replayed_steps", len(rows), kind="sweep")
        engine = None
        n_current = len(population)
        try:
            for k, policy in widening_path(
                base_policy,
                step,
                taxonomy,
                max_steps,
                attributes=attributes,
                purposes=purposes,
            ):
                if k < len(rows):
                    continue  # already journaled: replayed, not re-evaluated
                if engine is None:
                    engine = _make_engine(
                        population,
                        implicit_zero=implicit_zero,
                        guarded=guarded,
                        workers=workers,
                        worker_faults=worker_faults,
                        fault_seed=fault_seed,
                    )
                if isinstance(engine, SupervisedExecutor):
                    restored = shard_payloads.get(k, {})
                    if obs is not None and restored:
                        obs.inc(
                            "resume.replayed_shards", len(restored), kind="sweep"
                        )

                    def _journal_shard(lo, hi, violations, counts, _k=k):
                        journal.record_step(
                            _shard_payload(_k, lo, hi, violations, counts)
                        )

                    violations, counts = engine.evaluate_arrays_sharded(
                        policy, precomputed=restored, on_shard=_journal_shard
                    )
                    report = engine.assemble(policy.name, violations, counts)
                else:
                    report = engine.evaluate(policy)
                row = build_sweep_row(
                    report,
                    step=k,
                    n_current=n_current,
                    per_provider_utility=per_provider_utility,
                    extra_utility_per_step=extra_utility_per_step,
                )
                journal.record_step(_sweep_row_payload(row))
                rows.append(row)
                if obs is not None:
                    obs.inc("resume.live_steps", kind="sweep")
                _fire("sweep.step")
        finally:
            # A scripted kill (or real crash unwinding) must not leak
            # the supervisor's worker pool or shared-memory segment.
            if engine is not None:
                engine.close()
        return ExpansionSweep(
            scenario_name=scenario_name,
            per_provider_utility=per_provider_utility,
            extra_utility_per_step=extra_utility_per_step,
            rows=tuple(rows),
        )


# ---------------------------------------------------------------------------
# dynamics
# ---------------------------------------------------------------------------


def _round_payload(outcome: RoundOutcome) -> dict[str, Any]:
    return {
        "round_index": outcome.round_index,
        "policy_name": outcome.policy_name,
        "n_start": outcome.n_start,
        "n_defaulted": outcome.n_defaulted,
        "n_remaining": outcome.n_remaining,
        "violation_probability": outcome.violation_probability,
        "total_violations": outcome.total_violations,
        "utility": outcome.utility,
        "defaulted_providers": list(outcome.defaulted_providers),
    }


def _round_from_payload(payload: dict[str, Any]) -> RoundOutcome:
    return RoundOutcome(
        round_index=payload["round_index"],
        policy_name=payload["policy_name"],
        n_start=payload["n_start"],
        n_defaulted=payload["n_defaulted"],
        n_remaining=payload["n_remaining"],
        violation_probability=payload["violation_probability"],
        total_violations=payload["total_violations"],
        utility=payload["utility"],
        defaulted_providers=tuple(payload["defaulted_providers"]),
    )


def resumable_dynamics(
    population: Population,
    base_policy: HousePolicy,
    taxonomy: Taxonomy,
    *,
    journal_path: str,
    rounds: int,
    step: WideningStep | None = None,
    per_provider_utility: float = 1.0,
    extra_utility_per_round: float = 0.25,
    implicit_zero: bool = True,
    guarded: bool = False,
    workers: int = 1,
    mutation_epoch: int = 0,
) -> list[RoundOutcome]:
    """Multi-round dynamics, checkpointing one journal step per round.

    Matches :func:`~repro.simulation.dynamics.run_dynamics` bit-for-bit:
    recorded rounds are replayed (the surviving population is advanced
    from the journaled departures without touching the engine), live
    rounds are evaluated through the shared round builder against **one**
    engine whose departures are tombstoned in place — the compilation
    (and, under ``workers > 1``, the worker pool) survives the whole run.
    The worker count is not part of the journal fingerprint, but
    ``mutation_epoch`` is: pass the
    :attr:`~repro.perf.delta.MutableBatchEngine.epoch` the input
    population was snapshotted at (0 for a run-start population), and a
    journal recorded at a different epoch refuses to resume instead of
    silently mixing two mutation histories.
    """
    if step is None:
        step = WideningStep.uniform(1)
    _check_journalable_ids(population)
    params: dict[str, Any] = {
        "rounds": rounds,
        "per_provider_utility": per_provider_utility,
        "extra_utility_per_round": extra_utility_per_round,
        "step": _step_payload(step),
        "implicit_zero": implicit_zero,
    }
    fingerprint = journal_fingerprint(
        "dynamics",
        population=population,
        policies=[base_policy],
        params=params,
        mutation_epoch=mutation_epoch,
    )
    with RunJournal.resume_or_create(
        journal_path, kind="dynamics", fingerprint=fingerprint, params=params
    ) as journal, span("resume.dynamics", journal=journal_path, rounds=rounds):
        recorded = [_round_from_payload(p) for p in journal.payloads()]
        obs = active_observer()
        if obs is not None and recorded:
            obs.inc("resume.replayed_steps", len(recorded), kind="dynamics")
        outcomes: list[RoundOutcome] = []
        current_population = population
        current_policy = round_policy(
            base_policy, base_policy.name, step, taxonomy, 0
        )
        engine: Any = None
        try:
            for round_index in range(rounds):
                if len(current_population) == 0:
                    break
                if round_index > 0:
                    current_policy = round_policy(
                        current_policy, base_policy.name, step, taxonomy, round_index
                    )
                if round_index < len(recorded):
                    # Replay: advance the survivor set from the journal
                    # without touching the engine.
                    outcome = recorded[round_index]
                    outcomes.append(outcome)
                    if outcome.defaulted_providers:
                        current_population = current_population.without(
                            outcome.defaulted_providers
                        )
                    continue
                if engine is None:
                    engine = _make_engine(
                        current_population,
                        implicit_zero=implicit_zero,
                        guarded=guarded,
                        workers=workers,
                        mutable=True,
                    )
                report = engine.evaluate(current_policy)
                outcome = build_round_outcome(
                    report,
                    round_index=round_index,
                    per_provider_utility=per_provider_utility,
                    extra_utility_per_round=extra_utility_per_round,
                )
                journal.record_step(_round_payload(outcome))
                outcomes.append(outcome)
                if obs is not None:
                    obs.inc("resume.live_steps", kind="dynamics")
                _fire("dynamics.round")
                if outcome.defaulted_providers:
                    current_population = current_population.without(
                        outcome.defaulted_providers
                    )
                    engine.remove(outcome.defaulted_providers)
        finally:
            if engine is not None:
                engine.close()
        return outcomes


# ---------------------------------------------------------------------------
# forecast
# ---------------------------------------------------------------------------


def _pairs(mapping: dict[Hashable, float]) -> list[list[Any]]:
    return [
        [key, value]
        for key, value in sorted(mapping.items(), key=lambda item: repr(item[0]))
    ]


def resumable_forecast(
    population: Population,
    history: Sequence[HousePolicy],
    candidate: HousePolicy,
    *,
    journal_path: str,
    per_provider_utility: float = 1.0,
    implicit_zero: bool = True,
) -> DefaultForecast:
    """Section 10 forecasting with the history replay checkpointed.

    The expensive part of a forecast is replaying the deployed-policy
    history to recover interval-censored threshold observations; one
    journal step records the observation state after each history
    policy.  A resumed forecast restores the state from the last step
    and replays only the remaining policies, then forecasts the
    candidate — matching an uninterrupted
    :func:`~repro.estimation.forecast.forecast_defaults` over
    :func:`~repro.estimation.observation.observe_widening_history`
    bit-for-bit.
    """
    _check_journalable_ids(population)
    params: dict[str, Any] = {
        "per_provider_utility": per_provider_utility,
        "implicit_zero": implicit_zero,
        "n_history": len(history),
    }
    fingerprint = journal_fingerprint(
        "forecast",
        population=population,
        policies=[*history, candidate],
        params=params,
    )
    with RunJournal.resume_or_create(
        journal_path, kind="forecast", fingerprint=fingerprint, params=params
    ) as journal, span(
        "resume.forecast", journal=journal_path, n_history=len(history)
    ):
        payloads = journal.payloads()
        obs = active_observer()
        if obs is not None and payloads:
            obs.inc("resume.replayed_steps", len(payloads), kind="forecast")
        if payloads:
            state = payloads[-1]
            remaining: set[Hashable] = set(state["remaining"])
            last_tolerated: dict[Hashable, float] = dict(
                (key, value) for key, value in state["last_tolerated"]
            )
            departures: dict[Hashable, float] = dict(
                (key, value) for key, value in state["departures"]
            )
        else:
            remaining = {provider.provider_id for provider in population}
            last_tolerated = {
                provider.provider_id: 0.0 for provider in population
            }
            departures = {}
        engine = None
        for index, policy in enumerate(history):
            if index < len(payloads):
                continue  # this policy's observations are already journaled
            if remaining:
                if engine is None:
                    engine = BatchViolationEngine(
                        population, implicit_zero=implicit_zero
                    )
                report = engine.evaluate(policy)
                apply_policy_observation(
                    report, remaining, last_tolerated, departures
                )
            journal.record_step(
                {
                    "index": index,
                    "remaining": sorted(remaining, key=repr),
                    "last_tolerated": _pairs(last_tolerated),
                    "departures": _pairs(departures),
                }
            )
            if obs is not None:
                obs.inc("resume.live_steps", kind="forecast")
            _fire("forecast.observe")
        observations = observations_from_state(
            population, last_tolerated, departures
        )
        estimator = ThresholdEstimator(observations)
        return forecast_defaults(
            estimator,
            population,
            candidate,
            per_provider_utility=per_provider_utility,
            implicit_zero=implicit_zero,
        )

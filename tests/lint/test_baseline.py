"""Tests for baseline files: recording and suppressing known findings."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import LintConfigurationError
from repro.lint import (
    apply_baseline,
    diagnostic_fingerprint,
    lint_documents,
    load_baseline,
    render_json,
    write_baseline,
)

from .conftest import rule


@pytest.fixture()
def dirty_report(taxonomy, clean_policy):
    population = {
        "providers": [
            {
                "provider": "permissive",
                "preferences": [
                    rule(
                        visibility="all",
                        granularity="specific",
                        retention="indefinite",
                    ),
                    rule(purpose="resale"),
                ],
            }
        ]
    }
    report = lint_documents(
        taxonomy, policy=clean_policy, population=population
    )
    assert len(report) >= 2, "fixture must produce several findings"
    return report


class TestFingerprints:
    def test_stable_across_runs(self, taxonomy, clean_policy, dirty_report):
        again = lint_documents(
            taxonomy,
            policy=clean_policy,
            population={
                "providers": [
                    {
                        "provider": "permissive",
                        "preferences": [
                            rule(
                                visibility="all",
                                granularity="specific",
                                retention="indefinite",
                            ),
                            rule(purpose="resale"),
                        ],
                    }
                ]
            },
        )
        assert [diagnostic_fingerprint(d) for d in dirty_report] == [
            diagnostic_fingerprint(d) for d in again
        ]

    def test_distinct_findings_have_distinct_fingerprints(self, dirty_report):
        fingerprints = {diagnostic_fingerprint(d) for d in dirty_report}
        assert len(fingerprints) == len(dirty_report)


class TestWriteAndLoad:
    def test_round_trip(self, tmp_path, dirty_report):
        path = tmp_path / "baseline.json"
        recorded = write_baseline(path, dirty_report)
        assert recorded == len(dirty_report)
        fingerprints = load_baseline(path)
        assert fingerprints == {
            diagnostic_fingerprint(d) for d in dirty_report
        }

    def test_written_file_is_sorted_and_versioned(
        self, tmp_path, dirty_report
    ):
        path = tmp_path / "baseline.json"
        write_baseline(path, dirty_report)
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        assert payload["fingerprints"] == sorted(payload["fingerprints"])

    def test_loads_from_full_json_report(self, tmp_path, dirty_report):
        # `repro lint --format json > report.json` output works directly
        # as a baseline: no separate capture step needed.
        path = tmp_path / "report.json"
        path.write_text(render_json(dirty_report) + "\n")
        assert load_baseline(path) == {
            diagnostic_fingerprint(d) for d in dirty_report
        }

    @pytest.mark.parametrize(
        "content",
        [
            "{not json",
            json.dumps({"version": 1}),
            json.dumps({"version": 1, "fingerprints": "abc"}),
            json.dumps({"version": 1, "fingerprints": [1, 2]}),
        ],
        ids=["unparseable", "missing-key", "not-a-list", "non-strings"],
    )
    def test_malformed_baseline_raises(self, tmp_path, content):
        path = tmp_path / "bad.json"
        path.write_text(content)
        with pytest.raises(LintConfigurationError):
            load_baseline(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(LintConfigurationError):
            load_baseline(tmp_path / "absent.json")


class TestApplyBaseline:
    def test_suppresses_exactly_the_recorded_findings(
        self, tmp_path, dirty_report
    ):
        path = tmp_path / "baseline.json"
        write_baseline(path, dirty_report)
        filtered, suppressed = apply_baseline(
            dirty_report, load_baseline(path)
        )
        assert suppressed == len(dirty_report)
        assert not filtered
        assert filtered.exit_code() == 0

    def test_ratchet_new_findings_still_gate(
        self, tmp_path, taxonomy, clean_policy, dirty_report
    ):
        path = tmp_path / "baseline.json"
        write_baseline(path, dirty_report)
        # A new provider introduces a finding the baseline has not seen.
        grown = lint_documents(
            taxonomy,
            policy=clean_policy,
            population={
                "providers": [
                    {
                        "provider": "permissive",
                        "preferences": [
                            rule(
                                visibility="all",
                                granularity="specific",
                                retention="indefinite",
                            ),
                            rule(purpose="resale"),
                        ],
                    },
                    {
                        "provider": "newcomer",
                        "preferences": [rule(purpose="resale")],
                    },
                ]
            },
        )
        filtered, suppressed = apply_baseline(grown, load_baseline(path))
        assert suppressed == len(dirty_report)
        assert filtered
        assert all(
            d.location.name == "newcomer" for d in filtered
        )
        assert filtered.exit_code() == 1

    def test_empty_baseline_is_identity(self, dirty_report):
        filtered, suppressed = apply_baseline(dirty_report, frozenset())
        assert suppressed == 0
        assert filtered.as_dict() == dirty_report.as_dict()

"""Economics sanity rules (``PVL201``-``PVL202``).

Section 9's break-even condition (Eq. 31) — ``T* = U x (N_current /
N_future - 1)`` — is itself static: given the population's default
thresholds, the defaults a candidate widening causes (and hence its
break-even extra utility) are decidable from the documents.  These rules
flag widening proposals whose break-even is unattainable before anyone
runs a sweep.
"""

from __future__ import annotations

import math
from collections.abc import Callable

from ..core.economics import assess_expansion
from .diagnostics import SourceLocation, Severity
from .registry import Layer, LintContext, rule


def _assessment(ctx: LintContext):
    """The candidate's expansion assessment, or None when not applicable."""
    if ctx.candidate is None or ctx.population is None or not len(ctx.population):
        return None
    return assess_expansion(
        ctx.population,
        ctx.candidate,
        per_provider_utility=ctx.config.utility,
        extra_utility=0.0,
    )


@rule(
    "PVL201",
    title="widening annihilates population",
    severity=Severity.ERROR,
    layer=Layer.ECONOMICS,
    description=(
        "The candidate widening pushes every provider past their default "
        "threshold: N_future = 0, the break-even extra utility is "
        "infinite, and no finite gain can justify the expansion."
    ),
)
def check_widening_annihilates(
    ctx: LintContext, emit: Callable[..., None]
) -> None:
    assessment = _assessment(ctx)
    if assessment is None or assessment.n_future > 0:
        return
    emit(
        SourceLocation("candidate", name=assessment.policy_name),
        f"widening defaults all {assessment.n_current} providers "
        f"(N_future = 0); break-even extra utility is infinite",
        n_current=assessment.n_current,
        n_future=assessment.n_future,
        defaulted_providers=[str(p) for p in assessment.defaulted_providers],
        per_provider_utility=assessment.per_provider_utility,
    )


@rule(
    "PVL202",
    title="unattainable break-even utility",
    severity=Severity.WARNING,
    layer=Layer.ECONOMICS,
    description=(
        "Eq. 31's break-even extra utility T* for the candidate widening "
        "exceeds the configured attainable bound: the defaults it causes "
        "cannot be paid for."
    ),
)
def check_unattainable_break_even(
    ctx: LintContext, emit: Callable[..., None]
) -> None:
    if ctx.config.max_extra_utility is None:
        return
    assessment = _assessment(ctx)
    if assessment is None or assessment.n_future == 0:
        return  # N_future == 0 is PVL201's (stronger) finding
    threshold = assessment.break_even_extra_utility
    if threshold <= ctx.config.max_extra_utility or math.isinf(threshold):
        return
    emit(
        SourceLocation("candidate", name=assessment.policy_name),
        f"break-even extra utility T* = {threshold:.4g} exceeds the "
        f"attainable bound {ctx.config.max_extra_utility:g} "
        f"({assessment.n_current} -> {assessment.n_future} providers)",
        break_even_extra_utility=threshold,
        max_extra_utility=ctx.config.max_extra_utility,
        n_current=assessment.n_current,
        n_future=assessment.n_future,
        defaulted_providers=[str(p) for p in assessment.defaulted_providers],
    )

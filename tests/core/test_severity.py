"""Unit tests for severity aggregation (Eqs. 15-16) and breakdowns."""

from __future__ import annotations

import pytest

from repro.core import (
    Dimension,
    HousePolicy,
    PrivacyTuple,
    ProviderPreferences,
    SeverityBreakdown,
    provider_violation,
    total_violations,
)


@pytest.fixture()
def policy() -> HousePolicy:
    return HousePolicy(
        [
            ("weight", PrivacyTuple("billing", 3, 3, 3)),
            ("age", PrivacyTuple("billing", 2, 2, 2)),
        ]
    )


@pytest.fixture()
def violated_prefs() -> ProviderPreferences:
    return ProviderPreferences(
        "i",
        [
            ("weight", PrivacyTuple("billing", 1, 3, 3)),  # V exceeded by 2
            ("age", PrivacyTuple("billing", 2, 1, 2)),  # G exceeded by 1
        ],
    )


class TestProviderViolation:
    def test_breadth_sums_across_attributes(self, policy, violated_prefs):
        assert provider_violation(violated_prefs, policy) == 3.0

    def test_zero_when_dominating(self, policy):
        prefs = ProviderPreferences(
            "i",
            [
                ("weight", PrivacyTuple("billing", 3, 3, 3)),
                ("age", PrivacyTuple("billing", 2, 2, 2)),
            ],
        )
        assert provider_violation(prefs, policy) == 0.0

    def test_depth_single_attribute_large_exceedance(self):
        policy = HousePolicy([("weight", PrivacyTuple("billing", 10, 0, 0))])
        prefs = ProviderPreferences(
            "i", [("weight", PrivacyTuple("billing", 0, 0, 0))]
        )
        assert provider_violation(prefs, policy) == 10.0

    def test_paper_table1_severities(
        self, paper_population, paper_policy
    ):
        model = paper_population.sensitivity_model()
        expected = {"Alice": 0.0, "Ted": 60.0, "Bob": 80.0}
        for provider in paper_population:
            assert (
                provider_violation(provider.preferences, paper_policy, model)
                == expected[provider.provider_id]
            )


class TestTotalViolations:
    def test_sum_over_population(self, paper_population, paper_policy):
        model = paper_population.sensitivity_model()
        assert (
            total_violations(
                paper_population.preference_sets(), paper_policy, model
            )
            == 140.0
        )

    def test_empty_population_zero(self, paper_policy):
        assert total_violations([], paper_policy) == 0.0


class TestSeverityBreakdown:
    def test_marginals_sum_to_total(self, policy, violated_prefs):
        breakdown = SeverityBreakdown.analyze(violated_prefs, policy)
        assert breakdown.total == 3.0
        assert sum(breakdown.by_attribute.values()) == pytest.approx(3.0)
        assert sum(breakdown.by_dimension.values()) == pytest.approx(3.0)
        assert sum(breakdown.by_purpose.values()) == pytest.approx(3.0)

    def test_by_attribute_split(self, policy, violated_prefs):
        breakdown = SeverityBreakdown.analyze(violated_prefs, policy)
        assert breakdown.by_attribute == {"weight": 2.0, "age": 1.0}

    def test_by_dimension_split(self, policy, violated_prefs):
        breakdown = SeverityBreakdown.analyze(violated_prefs, policy)
        assert breakdown.by_dimension == {
            Dimension.VISIBILITY: 2.0,
            Dimension.GRANULARITY: 1.0,
        }

    def test_dominant_attribute(self, policy, violated_prefs):
        breakdown = SeverityBreakdown.analyze(violated_prefs, policy)
        assert breakdown.dominant_attribute() == "weight"
        assert breakdown.dominant_dimension() is Dimension.VISIBILITY

    def test_violated_flag(self, policy, violated_prefs):
        breakdown = SeverityBreakdown.analyze(violated_prefs, policy)
        assert breakdown.violated

    def test_clean_provider_empty_breakdown(self, policy):
        prefs = ProviderPreferences(
            "i",
            [
                ("weight", PrivacyTuple("billing", 3, 3, 3)),
                ("age", PrivacyTuple("billing", 2, 2, 2)),
            ],
        )
        breakdown = SeverityBreakdown.analyze(prefs, policy)
        assert not breakdown.violated
        assert breakdown.total == 0.0
        assert breakdown.dominant_attribute() is None
        assert breakdown.dominant_dimension() is None

    def test_findings_preserved(self, policy, violated_prefs):
        breakdown = SeverityBreakdown.analyze(violated_prefs, policy)
        assert len(breakdown.findings) == 2
        assert sum(f.weighted for f in breakdown.findings) == breakdown.total

"""Command-line interface: the violation model over JSON documents.

A file-driven front end for auditors and houses.  All commands consume the
policy-language documents (taxonomy, policy, population) and print either
fixed-width tables or JSON (``--json``).

Commands
--------
``evaluate``   full model evaluation: per-provider table + aggregates
``certify``    Definition 3: alpha-PPDB verdict (exit code 1 when violated)
``sweep``      Section 9: widening ledger with break-even T* per level
``whatif``     compare a candidate policy against the baseline
``validate``   semantic document validation (exit code 1 on problems)
``lint``       static policy analysis with coded diagnostics (PVL...)
``init-db``    create a sqlite privacy database from the documents
``db-report``  evaluate the stored state of a privacy database
``db-evict``   remove defaulted providers from a privacy database
``journal``    inspect and verify a run journal
``obs``        render a saved metrics snapshot (text/prometheus/json)
``doctor``     report (and ``--clean-shm`` remove) orphaned shared memory

Every command also accepts the observability flags ``--metrics PATH``
(write a JSON metrics snapshot on exit), ``--trace`` (print the span
tree to stderr), and ``-v``/``-vv`` (structured logs on stderr); see
:mod:`repro.obs`.

Operational failures — missing or unreadable files, malformed JSON,
corrupt databases or journals, interrupted runs — exit with code 2 and
print exactly one coded line on stderr (``error[PVL9xx]: ...``); see
:mod:`repro.resilience.diagnostics` for the code registry.  ``sweep``
accepts ``--journal`` to checkpoint each widening level and ``--resume``
to continue an interrupted run bit-for-bit.  ``sweep`` and ``certify``
accept ``--workers N`` to fan the evaluation over a process pool with
shared-memory compiled populations (``1`` = serial, ``0`` = one worker
per CPU; results are bit-for-bit identical).  The pool is supervised:
crashed workers are respawned, stalled shards are retried, and shards
that keep failing are evaluated serially in the parent, so a sweep
completes (with degradation recorded in the metrics) rather than dying
with ``error[PVL907]`` — that code remains the contract of the
unsupervised executor (``make_batch_engine(..., supervised=False)``).
``--journal`` composes with ``--workers``: shard completions are
checkpointed alongside the per-level rows, and a resumed run replays
them bit-for-bit under any worker count.  ``doctor`` lists shared-memory
segments orphaned by hard kills and removes them with ``--clean-shm``.

Example
-------
::

    python -m repro evaluate --taxonomy t.json --policy p.json \\
        --population pop.json
    python -m repro certify ... --alpha 0.1
    python -m repro sweep ... --steps 5 --utility 10 --extra-per-step 2
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import sqlite3
import sys
from collections.abc import Sequence

from .analysis import format_table, summarize
from .core import ViolationEngine
from .core.policy import HousePolicy
from .core.population import Population
from .exceptions import (
    JournalError,
    ParallelExecutionError,
    PrivacyModelError,
    ProcessKilled,
    StorageError,
    ValidationError,
)
from .obs import Observability, disable_observability, enable_observability
from .obs.render import FORMATS as OBS_FORMATS
from .policy_lang import (
    parse_policy,
    parse_population,
    parse_taxonomy,
    preference_documents,
    validate_policy_document,
    validate_preference_document,
)
from .resilience.diagnostics import (
    CLI_DOCUMENT,
    CLI_INTERRUPTED,
    CLI_IO,
    CLI_JOURNAL,
    CLI_JSON,
    CLI_PARALLEL,
    CLI_STORAGE,
    coded_error,
)
from .simulation import WideningStep, run_expansion_sweep
from .simulation.whatif import WhatIfAnalyzer
from .storage import PrivacyDatabase, atomic_write_text
from .taxonomy.builder import Taxonomy


def _load_json(path: str) -> dict:
    """Read one JSON document from *path*."""
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _parse(kind: str, parser, *args, **kwargs):
    """Run a document parser, converting structural crashes to model errors.

    A document that is valid JSON but the wrong *shape* (``"providers":
    42``) makes the parsers trip over builtin exceptions; the CLI
    contract is one coded line and exit 2, never a traceback.
    """
    try:
        return parser(*args, **kwargs)
    except PrivacyModelError:
        raise
    except (AttributeError, KeyError, TypeError, ValueError) as error:
        raise ValidationError(f"malformed {kind} document: {error}") from error


def _export(args: argparse.Namespace, payload: object) -> None:
    """Atomically write a command's JSON payload to ``--output``.

    The document appears complete or not at all: a crash (or an injected
    disk-full fault) mid-export never leaves a truncated file behind.
    """
    output = getattr(args, "output", None)
    if output:
        atomic_write_text(
            output, json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )


def _load_inputs(args: argparse.Namespace) -> tuple[Taxonomy, HousePolicy, Population]:
    """The common (taxonomy, policy, population) triple."""
    taxonomy = _parse("taxonomy", parse_taxonomy, _load_json(args.taxonomy))
    policy = _parse("policy", parse_policy, _load_json(args.policy), taxonomy)
    population = _parse(
        "population", parse_population, _load_json(args.population), taxonomy
    )
    return taxonomy, policy, population


def _report_payload(engine: ViolationEngine) -> dict:
    """The evaluate command's JSON payload."""
    report = engine.report()
    return {
        "policy": report.policy_name,
        "n_providers": report.n_providers,
        "violation_probability": report.violation_probability,
        "default_probability": report.default_probability,
        "total_violations": report.total_violations,
        "providers": [
            {
                "provider": str(outcome.provider_id),
                "violated": outcome.violated,
                "violation": outcome.violation,
                "threshold": (
                    None
                    if outcome.threshold == float("inf")
                    else outcome.threshold
                ),
                "defaulted": outcome.defaulted,
            }
            for outcome in report.outcomes
        ],
    }


def cmd_evaluate(args: argparse.Namespace) -> int:
    """Full model evaluation over the documents."""
    _, policy, population = _load_inputs(args)
    engine = ViolationEngine(policy, population)
    _export(args, _report_payload(engine))
    if args.json:
        print(json.dumps(_report_payload(engine), indent=2, sort_keys=True))
        return 0
    report = engine.report()
    rows = [
        [
            str(outcome.provider_id),
            int(outcome.violated),
            round(outcome.violation, 4),
            "inf" if outcome.threshold == float("inf") else outcome.threshold,
            int(outcome.defaulted),
        ]
        for outcome in report.outcomes
    ]
    print(
        format_table(
            ["provider", "w_i", "Violation_i", "v_i", "default_i"],
            rows,
            title=f"evaluation of {report.policy_name!r}",
        )
    )
    print()
    print(f"P(W)       = {report.violation_probability:.4f}")
    print(f"P(Default) = {report.default_probability:.4f}")
    print(f"Violations = {report.total_violations:g}")
    print()
    print(summarize(report).to_text())
    return 0


def cmd_certify(args: argparse.Namespace) -> int:
    """Definition 3 verdict; exit code 1 when the threshold is exceeded."""
    _, policy, population = _load_inputs(args)
    if args.workers != 1 or args.static:
        # The parallel path compiles the population and shards the
        # evaluation over worker processes; the verdict is identical to
        # the serial engine's (see tests/perf/test_parallel_parity.py).
        # --static skips evaluation entirely: the verdict comes from the
        # lint layer's severity intervals, with the same certificate.
        from .analysis.certification import batch_certification_document
        from .perf import make_batch_engine

        with make_batch_engine(population, workers=args.workers) as engine:
            document = batch_certification_document(
                engine, policy, args.alpha, static=args.static
            )
    else:
        from .analysis import certification_document

        document = certification_document(
            ViolationEngine(policy, population), args.alpha
        )
    certificate = document.certificate
    if args.json or getattr(args, "output", None):
        _export(args, json.loads(document.to_json()))
        if args.json:
            print(document.to_json())
        else:
            print(certificate)
    else:
        print(certificate)
    return 0 if certificate.satisfied else 1


def _sweep_payload(sweep) -> list[dict]:
    """The sweep command's JSON payload."""
    return [
        {
            "step": row.step,
            "violation_probability": row.violation_probability,
            "default_probability": row.default_probability,
            "n_future": row.n_future,
            "utility_future": row.utility_future,
            "break_even_extra_utility": row.break_even_extra_utility,
            "justified": row.justified,
        }
        for row in sweep.rows
    ]


def cmd_sweep(args: argparse.Namespace) -> int:
    """Section 9 widening ledger, optionally checkpointed to a journal."""
    taxonomy, policy, population = _load_inputs(args)
    if args.resume and not args.journal:
        raise JournalError("--resume requires --journal PATH")
    if args.journal:
        from .resilience import resumable_sweep

        if args.resume and not os.path.exists(args.journal):
            raise JournalError(
                f"--resume given but there is no journal at {args.journal!r}"
            )
        if not args.resume and os.path.exists(args.journal):
            raise JournalError(
                f"{args.journal!r} already exists; pass --resume to "
                f"continue the interrupted run"
            )
        # --journal composes with --workers: the supervised pool
        # checkpoints per shard as well as per level, and the worker
        # count is free to change between the crash and the resume.
        sweep = resumable_sweep(
            population,
            policy,
            taxonomy,
            journal_path=args.journal,
            step=WideningStep.uniform(1),
            max_steps=args.steps,
            per_provider_utility=args.utility,
            extra_utility_per_step=args.extra_per_step,
            guarded=args.guarded,
            workers=args.workers,
        )
    else:
        sweep = run_expansion_sweep(
            population,
            policy,
            taxonomy,
            step=WideningStep.uniform(1),
            max_steps=args.steps,
            per_provider_utility=args.utility,
            extra_utility_per_step=args.extra_per_step,
            workers=args.workers,
            guarded=args.guarded,
        )
    _export(args, _sweep_payload(sweep))
    if args.json:
        print(json.dumps(_sweep_payload(sweep), indent=2, sort_keys=True))
        return 0
    rows = [
        [
            row.step,
            round(row.violation_probability, 4),
            round(row.default_probability, 4),
            row.n_future,
            row.utility_future,
            round(row.break_even_extra_utility, 4),
            "yes" if row.justified else "no",
        ]
        for row in sweep.rows
    ]
    print(
        format_table(
            ["step", "P(W)", "P(Default)", "N_fut", "U_fut", "T*", "justified"],
            rows,
            title=(
                f"expansion sweep (U={args.utility}, "
                f"T/step={args.extra_per_step})"
            ),
        )
    )
    crossover = sweep.crossover_step()
    print()
    print(f"peak at step {sweep.best_step().step}; crossover at {crossover}")
    return 0


def cmd_whatif(args: argparse.Namespace) -> int:
    """Compare a candidate policy against the baseline."""
    taxonomy, policy, population = _load_inputs(args)
    candidate = _parse(
        "candidate", parse_policy, _load_json(args.candidate), taxonomy
    )
    analyzer = WhatIfAnalyzer(
        population,
        policy,
        per_provider_utility=args.utility,
        alpha=args.alpha,
    )
    result = analyzer.assess(candidate, extra_utility=args.extra)
    if args.json:
        print(
            json.dumps(
                {
                    "candidate": result.candidate.policy_name,
                    "violation_probability_delta": result.violation_probability_delta,
                    "default_probability_delta": result.default_probability_delta,
                    "severity_delta": result.severity_delta,
                    "justified": result.assessment.justified,
                    "alpha_ppdb_satisfied": result.certificate.satisfied,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(result.summary())
    return 0


def cmd_forecast(args: argparse.Namespace) -> int:
    """Section 10: forecast a candidate's defaults from observed history."""
    from .estimation import (
        ThresholdEstimator,
        forecast_defaults,
        observe_widening_history,
    )

    taxonomy = _parse("taxonomy", parse_taxonomy, _load_json(args.taxonomy))
    population = _parse(
        "population", parse_population, _load_json(args.population), taxonomy
    )
    history = [
        _parse("history policy", parse_policy, _load_json(path), taxonomy)
        for path in args.history
    ]
    candidate = _parse(
        "candidate", parse_policy, _load_json(args.candidate), taxonomy
    )
    estimator = ThresholdEstimator(
        observe_widening_history(population, history)
    )
    forecast = forecast_defaults(
        estimator,
        population,
        candidate,
        per_provider_utility=args.utility,
    )
    if args.json:
        print(
            json.dumps(
                {
                    "candidate": forecast.policy_name,
                    "n_providers": forecast.n_providers,
                    "expected_defaults": forecast.expected_defaults,
                    "expected_default_fraction": forecast.expected_default_fraction,
                    "certain_defaults": [
                        str(p) for p in forecast.certain_defaults
                    ],
                    "possible_defaults": [
                        str(p) for p in forecast.possible_defaults
                    ],
                    "break_even_extra_utility": forecast.break_even_extra_utility,
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(
            f"candidate {forecast.policy_name!r}: expected "
            f"{forecast.expected_defaults:.1f} defaults of "
            f"{forecast.n_providers} providers "
            f"({forecast.expected_default_fraction:.1%}); "
            f"T* = {forecast.break_even_extra_utility:.4g}"
        )
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    """Semantic validation; exit code 1 when problems were found."""
    taxonomy = _parse("taxonomy", parse_taxonomy, _load_json(args.taxonomy))
    problems: list[str] = []
    if args.policy:
        problems += validate_policy_document(_load_json(args.policy), taxonomy)
    if args.population:
        for document in preference_documents(_load_json(args.population)):
            problems += validate_preference_document(document, taxonomy)
    if problems:
        for problem in problems:
            print(f"PROBLEM: {problem}")
        return 1
    print("OK: documents are valid against the taxonomy")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Static policy analysis; exit code gated on diagnostic severity."""
    from .lint import LintConfig, Severity, lint_documents, render

    taxonomy = _parse("taxonomy", parse_taxonomy, _load_json(args.taxonomy))
    documents = dict(
        policy=_load_json(args.policy) if args.policy else None,
        population=_load_json(args.population) if args.population else None,
        candidate=_load_json(args.candidate) if args.candidate else None,
    )
    config = LintConfig(
        alpha=args.alpha,
        utility=args.utility,
        max_extra_utility=args.max_extra_utility,
    )
    select = args.select.split(",") if args.select else None
    ignore = args.ignore.split(",") if args.ignore else None
    if args.workers != 1 or args.cache:
        # The incremental path: identical findings (a parity property of
        # the test suite), with per-provider caching and fan-out.
        from .lint import LintCache, incremental_lint

        cache = LintCache(args.cache) if args.cache else None
        report = incremental_lint(
            taxonomy,
            **documents,
            config=config,
            select=select,
            ignore=ignore,
            cache=cache,
            workers=args.workers,
        )
        if cache is not None:
            cache.save()
    else:
        report = lint_documents(
            taxonomy, **documents, config=config, select=select, ignore=ignore
        )
    if args.write_baseline:
        from .lint import write_baseline

        recorded = write_baseline(args.write_baseline, report)
        print(
            f"wrote {recorded} fingerprint(s) to {args.write_baseline}",
            file=sys.stderr,
        )
    suppressed = 0
    if args.baseline:
        from .lint import apply_baseline, load_baseline

        report, suppressed = apply_baseline(
            report, load_baseline(args.baseline)
        )
    artifacts = {
        kind: path
        for kind, path in (
            ("taxonomy", args.taxonomy),
            ("policy", args.policy),
            ("population", args.population),
            ("candidate", args.candidate),
        )
        if path
    }
    print(render(report, args.format, artifacts=artifacts))
    if suppressed and args.format == "text":
        print(f"{suppressed} baselined finding(s) suppressed")
    fail_on = (
        None if args.fail_on == "never" else Severity.from_name(args.fail_on)
    )
    return report.exit_code(fail_on)


def cmd_init_db(args: argparse.Namespace) -> int:
    """Create a sqlite privacy database from the documents."""
    _, policy, population = _load_inputs(args)
    with PrivacyDatabase.create(args.database) as db:
        db.install(policy, population)
    print(
        f"created {args.database}: {len(population)} providers, "
        f"{len(policy)} policy entries"
    )
    return 0


def cmd_db_report(args: argparse.Namespace) -> int:
    """Evaluate a privacy database's stored state."""
    with PrivacyDatabase.open(args.database) as db:
        report = db.engine().report()
        audit = db.audit_log.report()
    print(report)
    print(
        f"audit log: {audit.total_events} events, "
        f"{audit.violating_accesses} violating accesses "
        f"(observed rate {audit.observed_violation_rate:.3f})"
    )
    return 0


def cmd_db_evict(args: argparse.Namespace) -> int:
    """Remove defaulted providers from a privacy database."""
    with PrivacyDatabase.open(args.database) as db:
        evicted = db.evict_defaulted()
    if evicted:
        print(f"evicted {len(evicted)} providers: {', '.join(evicted)}")
    else:
        print("no defaulted providers")
    return 0


def cmd_journal(args: argparse.Namespace) -> int:
    """Inspect and chain-verify a run journal."""
    from .resilience import journal_summary

    payload = journal_summary(args.journal)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        f"{payload['path']}: {payload['kind']} run, "
        f"{payload['steps']} steps recorded, chain verified"
    )
    print(f"fingerprint {payload['fingerprint']}")
    print(f"head        {payload['head']}")
    for key, value in sorted(payload["params"].items()):
        print(f"  {key} = {value!r}")
    return 0


def cmd_doctor(args: argparse.Namespace) -> int:
    """Report (and optionally remove) orphaned shared-memory segments.

    A SIGKILLed run cannot unlink its ``/dev/shm/pvl_*`` export; the
    owner pid embedded in the segment name lets this command tell a
    crashed run's leak from a live run's working set.
    """
    from .perf import clean_stale_segments, stale_segments

    if args.clean_shm:
        removed = clean_stale_segments()
        payload = {
            "removed": [
                {"segment": name, "pid": pid} for name, pid in removed
            ],
            "stale": [],
        }
    else:
        stale = stale_segments()
        payload = {
            "removed": [],
            "stale": [{"segment": name, "pid": pid} for name, pid in stale],
        }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if args.clean_shm:
        if payload["removed"]:
            for entry in payload["removed"]:
                print(f"removed /dev/shm/{entry['segment']}")
        else:
            print("no stale segments")
    elif payload["stale"]:
        for entry in payload["stale"]:
            print(
                f"stale /dev/shm/{entry['segment']} "
                f"(owner pid {entry['pid']} is gone); "
                "run 'repro doctor --clean-shm' to remove"
            )
    else:
        print("no stale segments")
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    """Render a saved metrics snapshot (see ``--metrics``)."""
    from .obs import render_snapshot

    print(render_snapshot(_load_json(args.snapshot), args.format))
    return 0


def _add_document_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--taxonomy", required=True, help="taxonomy JSON file")
    parser.add_argument("--policy", required=True, help="policy JSON file")
    parser.add_argument(
        "--population", required=True, help="population JSON file"
    )


def _obs_options() -> argparse.ArgumentParser:
    """The shared observability flags, attached to every subcommand."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("observability")
    group.add_argument(
        "--metrics",
        metavar="PATH",
        help="write a JSON metrics snapshot to PATH when the command exits",
    )
    group.add_argument(
        "--trace",
        action="store_true",
        help="print the recorded span tree to stderr when the command exits",
    )
    group.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="structured logs on stderr (-v INFO, -vv DEBUG)",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Quantify privacy violations (Banerjee et al., SDM 2011).",
    )
    obs_options = _obs_options()

    def add_parser(name: str, **kwargs) -> argparse.ArgumentParser:
        return subparsers.add_parser(name, parents=[obs_options], **kwargs)

    subparsers = parser.add_subparsers(dest="command", required=True)

    evaluate = add_parser(
        "evaluate", help="full model evaluation over documents"
    )
    _add_document_arguments(evaluate)
    evaluate.add_argument("--json", action="store_true", help="JSON output")
    evaluate.add_argument(
        "--output", help="atomically export the JSON report to this path"
    )
    evaluate.set_defaults(func=cmd_evaluate)

    certify = add_parser(
        "certify", help="alpha-PPDB verdict (exit 1 when violated)"
    )
    _add_document_arguments(certify)
    certify.add_argument("--alpha", type=float, required=True)
    certify.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the evaluation (1 serial, 0 one per CPU)",
    )
    certify.add_argument(
        "--static",
        action="store_true",
        help=(
            "derive the verdict from the lint layer's static severity "
            "intervals without evaluating the population"
        ),
    )
    certify.add_argument("--json", action="store_true")
    certify.add_argument(
        "--output",
        help="atomically export the certification document to this path",
    )
    certify.set_defaults(func=cmd_certify)

    sweep = add_parser("sweep", help="Section 9 widening ledger")
    _add_document_arguments(sweep)
    sweep.add_argument("--steps", type=int, default=5)
    sweep.add_argument("--utility", type=float, default=1.0)
    sweep.add_argument("--extra-per-step", type=float, default=0.25)
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes for the per-level evaluations "
            "(1 serial, 0 one per CPU); composes with --journal, which "
            "then checkpoints per shard as well as per level"
        ),
    )
    sweep.add_argument("--json", action="store_true")
    sweep.add_argument(
        "--output", help="atomically export the JSON ledger to this path"
    )
    sweep.add_argument(
        "--journal",
        help="checkpoint each widening level to this run journal",
    )
    sweep.add_argument(
        "--resume",
        action="store_true",
        help="continue an interrupted run from --journal",
    )
    sweep.add_argument(
        "--guarded",
        action="store_true",
        help="spot-check the batch engine against the reference oracle",
    )
    sweep.set_defaults(func=cmd_sweep)

    whatif = add_parser(
        "whatif", help="compare a candidate policy against the baseline"
    )
    _add_document_arguments(whatif)
    whatif.add_argument("--candidate", required=True)
    whatif.add_argument("--extra", type=float, default=0.0)
    whatif.add_argument("--utility", type=float, default=1.0)
    whatif.add_argument("--alpha", type=float, default=0.1)
    whatif.add_argument("--json", action="store_true")
    whatif.set_defaults(func=cmd_whatif)

    forecast = add_parser(
        "forecast",
        help="forecast a candidate policy's defaults from observed history",
    )
    forecast.add_argument("--taxonomy", required=True)
    forecast.add_argument("--population", required=True)
    forecast.add_argument(
        "--history",
        required=True,
        nargs="+",
        help="deployed policy JSON files, oldest first",
    )
    forecast.add_argument("--candidate", required=True)
    forecast.add_argument("--utility", type=float, default=1.0)
    forecast.add_argument("--json", action="store_true")
    forecast.set_defaults(func=cmd_forecast)

    validate = add_parser(
        "validate", help="validate documents against the taxonomy"
    )
    validate.add_argument("--taxonomy", required=True)
    validate.add_argument("--policy")
    validate.add_argument("--population")
    validate.set_defaults(func=cmd_validate)

    lint = add_parser(
        "lint",
        help="static policy analysis with coded diagnostics (PVL...)",
    )
    lint.add_argument("--taxonomy", required=True, help="taxonomy JSON file")
    lint.add_argument("--policy", help="policy JSON file")
    lint.add_argument("--population", help="population JSON file")
    lint.add_argument(
        "--candidate", help="candidate widened policy JSON file"
    )
    lint.add_argument(
        "--alpha",
        type=float,
        help="enable static alpha-PPDB certification (PVL110)",
    )
    lint.add_argument(
        "--utility",
        type=float,
        default=1.0,
        help="per-provider utility U for the economics rules (default 1.0)",
    )
    lint.add_argument(
        "--max-extra-utility",
        type=float,
        help="attainable extra-utility bound for PVL202",
    )
    lint.add_argument(
        "--format",
        choices=["text", "json", "sarif"],
        default="text",
        help="output format (default text)",
    )
    lint.add_argument(
        "--fail-on",
        choices=["error", "warning", "info", "never"],
        default="error",
        help="lowest severity that makes the exit code 1 (default error)",
    )
    lint.add_argument(
        "--select", help="comma-separated rule codes to run exclusively"
    )
    lint.add_argument("--ignore", help="comma-separated rule codes to skip")
    lint.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes for per-provider passes "
            "(1 serial, 0 one per CPU)"
        ),
    )
    lint.add_argument(
        "--cache",
        help="incremental lint cache file (created when absent)",
    )
    lint.add_argument(
        "--baseline",
        help=(
            "suppress the findings recorded in this baseline file; the "
            "exit code gates on new findings only"
        ),
    )
    lint.add_argument(
        "--write-baseline",
        help="record the (unsuppressed) findings as a new baseline file",
    )
    lint.set_defaults(func=cmd_lint)

    init_db = add_parser(
        "init-db", help="create a sqlite privacy database"
    )
    _add_document_arguments(init_db)
    init_db.add_argument("--database", required=True, help="sqlite path")
    init_db.set_defaults(func=cmd_init_db)

    db_report = add_parser(
        "db-report", help="evaluate a privacy database's stored state"
    )
    db_report.add_argument("database")
    db_report.set_defaults(func=cmd_db_report)

    db_evict = add_parser(
        "db-evict", help="remove defaulted providers"
    )
    db_evict.add_argument("database")
    db_evict.set_defaults(func=cmd_db_evict)

    journal = add_parser(
        "journal", help="inspect and verify a run journal"
    )
    journal.add_argument("journal", help="run journal path")
    journal.add_argument("--json", action="store_true")
    journal.set_defaults(func=cmd_journal)

    doctor = add_parser(
        "doctor",
        help="report (and --clean-shm remove) orphaned shared memory",
    )
    doctor.add_argument(
        "--clean-shm",
        action="store_true",
        help="unlink /dev/shm/pvl_* segments whose owner process is gone",
    )
    doctor.add_argument("--json", action="store_true")
    doctor.set_defaults(func=cmd_doctor)

    obs = add_parser(
        "obs", help="render a saved metrics snapshot"
    )
    obs.add_argument("snapshot", help="snapshot JSON written by --metrics")
    obs.add_argument(
        "--format",
        choices=list(OBS_FORMATS),
        default="text",
        help="output format (default text)",
    )
    obs.set_defaults(func=cmd_obs)

    return parser


def _setup_observability(args: argparse.Namespace) -> Observability | None:
    """Enable the observer (and stderr logging) per the global flags."""
    verbose = getattr(args, "verbose", 0)
    if verbose:
        logging.basicConfig(
            stream=sys.stderr,
            level=logging.DEBUG if verbose >= 2 else logging.INFO,
            format="%(levelname)s %(name)s: %(message)s",
        )
        logging.getLogger("repro").setLevel(
            logging.DEBUG if verbose >= 2 else logging.INFO
        )
    if getattr(args, "metrics", None) or getattr(args, "trace", False) or verbose:
        return enable_observability()
    return None


def _finish_observability(
    args: argparse.Namespace, observer: Observability | None
) -> None:
    """Export the snapshot / span tree the global flags asked for."""
    if observer is None:
        return
    disable_observability()
    snapshot = observer.snapshot()
    metrics_path = getattr(args, "metrics", None)
    if metrics_path:
        try:
            atomic_write_text(
                metrics_path,
                json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
            )
        except OSError as error:
            # The command's own outcome stands; the snapshot is advisory.
            print(coded_error(CLI_IO, str(error)), file=sys.stderr)
    if getattr(args, "trace", False):
        tree = observer.tracer.tree_text()
        print(tree if tree else "trace: no spans recorded", file=sys.stderr)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    observer = _setup_observability(args)
    try:
        return _dispatch(args)
    finally:
        _finish_observability(args, observer)


def _dispatch(args: argparse.Namespace) -> int:
    """Run the selected command, mapping failures to coded exit-2 lines."""
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream (e.g. `| head`) closed the pipe: exit quietly, the
        # conventional Unix behaviour.
        import os

        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        os._exit(0)
    except json.JSONDecodeError as error:
        print(coded_error(CLI_JSON, f"invalid JSON input: {error}"), file=sys.stderr)
        return 2
    except OSError as error:
        print(coded_error(CLI_IO, str(error)), file=sys.stderr)
        return 2
    except ProcessKilled as error:
        print(coded_error(CLI_INTERRUPTED, str(error)), file=sys.stderr)
        return 2
    except JournalError as error:
        print(coded_error(CLI_JOURNAL, str(error)), file=sys.stderr)
        return 2
    except StorageError as error:
        print(coded_error(CLI_STORAGE, str(error)), file=sys.stderr)
        return 2
    except ParallelExecutionError as error:
        print(coded_error(CLI_PARALLEL, str(error)), file=sys.stderr)
        return 2
    except sqlite3.DatabaseError as error:
        print(coded_error(CLI_STORAGE, str(error)), file=sys.stderr)
        return 2
    except PrivacyModelError as error:
        print(coded_error(CLI_DOCUMENT, str(error)), file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Seeded samplers for preferences, sensitivities, and thresholds.

Each sampler takes an explicit :class:`numpy.random.Generator` so every
simulation is reproducible bit-for-bit from its seed.  The samplers encode
one population segment's *disposition*:

* ``tightness`` in ``[0, 1]`` — how close to "reveal nothing" the
  segment's preferences sit.  Tightness 1 pins every preference at rank 0;
  tightness 0 allows the full ladder.
* sensitivity and threshold ranges — uniform draws within per-segment
  bounds (the paper's ``s``/``s[dim]`` weights and ``v_i`` tolerances).
"""

from __future__ import annotations

import numpy as np

from .._validation import check_real
from ..core.dimensions import Dimension, ORDERED_DIMENSIONS
from ..core.sensitivity import DimensionSensitivity
from ..core.tuples import PrivacyTuple
from ..exceptions import SimulationError
from ..taxonomy.builder import Taxonomy


def _max_rank(taxonomy: Taxonomy, dimension: Dimension, fallback: int = 6) -> int:
    """The top rank of a dimension's ladder (bounded for open-ended retention)."""
    domain = taxonomy.domain(dimension)
    top = domain.max_rank
    return fallback if top is None else top


def sample_preference_tuple(
    rng: np.random.Generator,
    taxonomy: Taxonomy,
    purpose: str,
    tightness: float,
) -> PrivacyTuple:
    """Draw one preference tuple for *purpose* with the given tightness.

    Each ordered rank is uniform on ``[0, ceiling]`` where
    ``ceiling = round((1 - tightness) * max_rank)``: tight segments cluster
    near "reveal nothing", loose segments roam the whole ladder.
    """
    tightness = check_real(tightness, "tightness", minimum=0.0)
    if tightness > 1.0:
        raise SimulationError(f"tightness must be <= 1, got {tightness}")
    ranks: dict[str, int] = {}
    for dimension in ORDERED_DIMENSIONS:
        top = _max_rank(taxonomy, dimension)
        ceiling = int(round((1.0 - tightness) * top))
        ranks[dimension.value] = int(rng.integers(0, ceiling + 1))
    return PrivacyTuple(purpose=purpose, **ranks)


def sample_dimension_sensitivity(
    rng: np.random.Generator,
    value_range: tuple[float, float],
    weight_range: tuple[float, float],
) -> DimensionSensitivity:
    """Draw one per-datum sensitivity record (Eq. 11).

    ``value_range`` bounds the data-value sensitivity ``s``;
    ``weight_range`` bounds each of the three dimension weights.
    """
    lo, hi = value_range
    if lo > hi or lo < 0:
        raise SimulationError(f"invalid value_range {value_range!r}")
    wlo, whi = weight_range
    if wlo > whi or wlo < 0:
        raise SimulationError(f"invalid weight_range {weight_range!r}")
    return DimensionSensitivity(
        value=float(rng.uniform(lo, hi)),
        visibility=float(rng.uniform(wlo, whi)),
        granularity=float(rng.uniform(wlo, whi)),
        retention=float(rng.uniform(wlo, whi)),
    )


def sample_threshold(
    rng: np.random.Generator, threshold_range: tuple[float, float]
) -> float:
    """Draw one default tolerance ``v_i`` uniformly within bounds."""
    lo, hi = threshold_range
    if lo > hi or lo < 0:
        raise SimulationError(f"invalid threshold_range {threshold_range!r}")
    return float(rng.uniform(lo, hi))

"""Unit tests for the Figure 1 geometry (boxes and containment)."""

from __future__ import annotations

import pytest

from repro.core import Dimension, PrivacyTuple
from repro.exceptions import ValidationError
from repro.taxonomy import PrivacyBox, PrivacyPoint, violation_dimensions


class TestPrivacyPoint:
    def test_projection_default_all_ordered(self):
        point = PrivacyPoint.of(PrivacyTuple("p", 1, 2, 3))
        assert point.coordinates == (1, 2, 3)

    def test_two_dimensional_projection(self):
        point = PrivacyPoint.of(
            PrivacyTuple("p", 1, 2, 3),
            (Dimension.VISIBILITY, Dimension.RETENTION),
        )
        assert point.coordinates == (1, 3)

    def test_dominated_by(self):
        small = PrivacyPoint.of(PrivacyTuple("p", 1, 1, 1))
        big = PrivacyPoint.of(PrivacyTuple("p", 2, 2, 2))
        assert small.dominated_by(big)
        assert not big.dominated_by(small)

    def test_mismatched_projections_raise(self):
        a = PrivacyPoint.of(PrivacyTuple("p", 1, 1, 1), (Dimension.VISIBILITY,))
        b = PrivacyPoint.of(PrivacyTuple("p", 1, 1, 1), (Dimension.RETENTION,))
        with pytest.raises(ValidationError):
            a.dominated_by(b)

    def test_purpose_dimension_rejected(self):
        with pytest.raises(ValidationError):
            PrivacyPoint((Dimension.PURPOSE,), (1,))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            PrivacyPoint((Dimension.VISIBILITY,), (1, 2))


class TestPrivacyBox:
    def test_containment_panel_a(self):
        # Figure 1a: policy box inside preference box -> no violation.
        preference = PrivacyBox.of(PrivacyTuple("p", 3, 3, 3))
        policy = PrivacyBox.of(PrivacyTuple("p", 2, 2, 2))
        assert preference.contains(policy)
        assert policy.escape_dimensions(preference) == ()

    def test_escape_one_dimension_panel_b(self):
        preference = PrivacyBox.of(PrivacyTuple("p", 3, 1, 3))
        policy = PrivacyBox.of(PrivacyTuple("p", 2, 2, 2))
        assert not preference.contains(policy)
        assert policy.escape_dimensions(preference) == (Dimension.GRANULARITY,)

    def test_escape_two_dimensions_panel_c(self):
        preference = PrivacyBox.of(PrivacyTuple("p", 1, 1, 3))
        policy = PrivacyBox.of(PrivacyTuple("p", 2, 2, 2))
        assert policy.escape_dimensions(preference) == (
            Dimension.VISIBILITY,
            Dimension.GRANULARITY,
        )

    def test_volume(self):
        box = PrivacyBox.of(PrivacyTuple("p", 2, 3, 4))
        assert box.volume() == 24

    def test_zero_rank_gives_zero_volume(self):
        box = PrivacyBox.of(PrivacyTuple("p", 0, 3, 4))
        assert box.volume() == 0

    def test_intersection_volume(self):
        a = PrivacyBox.of(PrivacyTuple("p", 2, 3, 4))
        b = PrivacyBox.of(PrivacyTuple("p", 3, 2, 4))
        assert a.intersection_volume(b) == 2 * 2 * 4

    def test_intersection_symmetric(self):
        a = PrivacyBox.of(PrivacyTuple("p", 2, 3, 4))
        b = PrivacyBox.of(PrivacyTuple("p", 3, 2, 1))
        assert a.intersection_volume(b) == b.intersection_volume(a)

    def test_contained_box_intersection_is_own_volume(self):
        outer = PrivacyBox.of(PrivacyTuple("p", 3, 3, 3))
        inner = PrivacyBox.of(PrivacyTuple("p", 1, 2, 3))
        assert outer.intersection_volume(inner) == inner.volume()


class TestViolationDimensions:
    def test_agrees_with_core_exceeded_dimensions(self):
        from repro.core import exceeded_dimensions

        cases = [
            (PrivacyTuple("p", 3, 3, 3), PrivacyTuple("p", 2, 2, 2)),
            (PrivacyTuple("p", 1, 3, 3), PrivacyTuple("p", 2, 2, 2)),
            (PrivacyTuple("p", 1, 1, 1), PrivacyTuple("p", 2, 2, 2)),
            (PrivacyTuple("p", 0, 0, 0), PrivacyTuple("p", 0, 0, 0)),
        ]
        for preference, policy in cases:
            assert violation_dimensions(preference, policy) == exceeded_dimensions(
                preference, policy
            )

    def test_cross_purpose_is_empty(self):
        assert (
            violation_dimensions(
                PrivacyTuple("p", 0, 0, 0), PrivacyTuple("q", 9, 9, 9)
            )
            == ()
        )

    def test_two_dimensional_figure_projection(self):
        # The figure's S_i x S_j view: restrict to two axes.
        dims = (Dimension.VISIBILITY, Dimension.GRANULARITY)
        result = violation_dimensions(
            PrivacyTuple("p", 1, 1, 0),
            PrivacyTuple("p", 2, 2, 9),
            dims,
        )
        assert result == dims

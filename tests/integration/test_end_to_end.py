"""Full-pipeline integration: documents -> store -> engine -> analysis -> game."""

from __future__ import annotations

import pytest

from repro.analysis import (
    certification_document,
    default_cdf_from_sweep,
    summarize,
    violation_matrix,
)
from repro.core import ViolationEngine
from repro.game import GreedyWidening, play_widening_game
from repro.policy_lang import (
    parse_policy,
    policy_to_dict,
    preferences_to_dict,
    parse_preferences,
)
from repro.simulation import (
    WideningStep,
    run_dynamics,
    run_expansion_sweep,
)
from repro.storage import PrivacyDatabase


class TestDocumentToEnginePipeline:
    def test_policy_document_drives_engine(self, small_crm):
        document = policy_to_dict(small_crm.policy, small_crm.taxonomy)
        parsed = parse_policy(document, small_crm.taxonomy)
        direct = ViolationEngine(small_crm.policy, small_crm.population).report()
        via_doc = ViolationEngine(parsed, small_crm.population).report()
        assert via_doc.total_violations == direct.total_violations

    def test_preference_documents_round_trip_population(self, small_crm):
        for provider in list(small_crm.population)[:5]:
            document = preferences_to_dict(
                provider.preferences, small_crm.taxonomy
            )
            assert (
                parse_preferences(document, small_crm.taxonomy)
                == provider.preferences
            )


class TestScenarioToAnalysisPipeline:
    @pytest.fixture(scope="class")
    def sweep(self, small_healthcare):
        return run_expansion_sweep(
            small_healthcare.population,
            small_healthcare.policy,
            small_healthcare.taxonomy,
            max_steps=4,
            per_provider_utility=small_healthcare.per_provider_utility,
            extra_utility_per_step=small_healthcare.extra_utility_per_step,
        )

    def test_cdf_matches_sweep(self, sweep):
        cdf = default_cdf_from_sweep(sweep)
        assert cdf.cumulative_defaults == sweep.default_counts()

    def test_matrix_total_matches_engine(self, small_healthcare):
        engine = ViolationEngine(
            small_healthcare.policy, small_healthcare.population
        )
        matrix = violation_matrix(engine.report())
        assert matrix.total == pytest.approx(
            engine.report().total_violations
        )

    def test_summary_matches_engine(self, small_healthcare):
        engine = ViolationEngine(
            small_healthcare.policy, small_healthcare.population
        )
        summary = summarize(engine.report())
        assert summary.overall.n == len(small_healthcare.population)

    def test_certification_document_verifies(self, small_healthcare):
        engine = ViolationEngine(
            small_healthcare.policy, small_healthcare.population
        )
        assert certification_document(engine, 0.05).verify()


class TestStorageDrivenLifecycle:
    def test_widen_evict_recertify(self, small_crm):
        """The full house lifecycle on the sqlite store: install, widen,
        watch the certificate fail, evict defaulted providers, re-widen."""
        from repro.simulation import widen

        with PrivacyDatabase.create(":memory:") as db:
            db.install(small_crm.policy, small_crm.population)
            assert db.certify(0.05).satisfied

            widened = widen(
                small_crm.policy, WideningStep.uniform(2), small_crm.taxonomy
            )
            db.set_policy(widened)
            assert not db.certify(0.05).satisfied

            evicted = db.evict_defaulted()
            assert evicted
            report = db.engine().report()
            assert report.n_defaulted == 0
            # The survivors may still be violated, just not past threshold.
            assert report.n_providers == len(small_crm.population) - len(evicted)

    def test_dynamics_agree_with_repeated_eviction(self, small_crm):
        """run_dynamics in memory equals widen+evict loops on the store."""
        from repro.simulation import widen

        rounds = 3
        outcomes = run_dynamics(
            small_crm.population,
            small_crm.policy,
            small_crm.taxonomy,
            rounds=rounds,
        )
        with PrivacyDatabase.create(":memory:") as db:
            db.install(small_crm.policy, small_crm.population)
            policy = small_crm.policy
            store_counts = []
            for round_index in range(rounds):
                if round_index > 0:
                    policy = widen(
                        policy, WideningStep.uniform(1), small_crm.taxonomy
                    )
                    db.set_policy(policy)
                evicted = db.evict_defaulted()
                remaining = db.engine().report().n_providers
                store_counts.append(remaining)
            memory_counts = [o.n_remaining for o in outcomes]
            assert store_counts == memory_counts


class TestGameOverScenario:
    def test_greedy_game_terminates_and_loses_providers(self, small_social):
        trace = play_widening_game(
            small_social.population,
            small_social.policy,
            small_social.taxonomy,
            GreedyWidening(WideningStep.uniform(1), max_rounds=10),
            per_provider_utility=small_social.per_provider_utility,
            extra_utility_per_round=small_social.extra_utility_per_step,
        )
        assert trace.rounds
        assert trace.final_round.n_remaining <= trace.rounds[0].n_start

"""Unit tests for diff/comp/conf and Definition 1 (the violation core)."""

from __future__ import annotations

import pytest

from repro.core import (
    AttributeSensitivities,
    Dimension,
    DimensionSensitivity,
    HousePolicy,
    PolicyEntry,
    PreferenceEntry,
    PrivacyTuple,
    ProviderPreferences,
    ProviderSensitivity,
    SensitivityModel,
    comp,
    conf,
    diff,
    exceeded_dimensions,
    find_violations,
    violation_indicator,
)
from repro.exceptions import ValidationError


class TestDiff:
    """Equation 12."""

    def test_exceedance_returned(self):
        assert diff(1, 4) == 3

    def test_equal_is_zero(self):
        assert diff(2, 2) == 0

    def test_policy_below_preference_is_zero_not_negative(self):
        assert diff(4, 1) == 0

    def test_zero_preference(self):
        assert diff(0, 3) == 3

    def test_non_integer_rejected(self):
        with pytest.raises(ValidationError):
            diff(1.5, 2)  # type: ignore[arg-type]


class TestComp:
    """Equation 13."""

    def _pref(self, attribute="weight", purpose="billing"):
        return PreferenceEntry(
            "alice", attribute, PrivacyTuple(purpose, 1, 1, 1)
        )

    def _pol(self, attribute="weight", purpose="billing"):
        return PolicyEntry(attribute, PrivacyTuple(purpose, 2, 2, 2))

    def test_same_attribute_same_purpose_comparable(self):
        assert comp(self._pref(), self._pol()) == 1

    def test_different_attribute_incomparable(self):
        assert comp(self._pref(attribute="age"), self._pol()) == 0

    def test_different_purpose_incomparable(self):
        assert comp(self._pref(purpose="research"), self._pol()) == 0


class TestExceededDimensions:
    def test_no_exceedance(self):
        pref = PrivacyTuple("p", 3, 3, 3)
        pol = PrivacyTuple("p", 2, 3, 1)
        assert exceeded_dimensions(pref, pol) == ()

    def test_single_dimension(self):
        pref = PrivacyTuple("p", 3, 1, 3)
        pol = PrivacyTuple("p", 2, 2, 1)
        assert exceeded_dimensions(pref, pol) == (Dimension.GRANULARITY,)

    def test_two_dimensions(self):
        pref = PrivacyTuple("p", 3, 1, 1)
        pol = PrivacyTuple("p", 2, 2, 2)
        assert exceeded_dimensions(pref, pol) == (
            Dimension.GRANULARITY,
            Dimension.RETENTION,
        )

    def test_all_three(self):
        pref = PrivacyTuple("p", 0, 0, 0)
        pol = PrivacyTuple("p", 1, 1, 1)
        assert len(exceeded_dimensions(pref, pol)) == 3

    def test_different_purposes_never_exceed(self):
        pref = PrivacyTuple("p", 0, 0, 0)
        pol = PrivacyTuple("q", 5, 5, 5)
        assert exceeded_dimensions(pref, pol) == ()

    def test_equality_is_not_exceedance(self):
        t = PrivacyTuple("p", 2, 2, 2)
        assert exceeded_dimensions(t, t) == ()


class TestConf:
    """Equation 14, including the paper's Ted and Bob rows."""

    def _model(self, value, v, g, r, attribute_weight=4.0):
        return SensitivityModel(
            AttributeSensitivities({"Weight": attribute_weight}),
            {
                "i": ProviderSensitivity(
                    "i",
                    {
                        "Weight": DimensionSensitivity(
                            value=value, visibility=v, granularity=g, retention=r
                        )
                    },
                )
            },
        )

    def test_ted_row_equals_60(self):
        # Ted: pref <pr, v+2, g-1, r+2> vs policy <pr, v, g, r>; only G exceeds by 1.
        pref = PreferenceEntry("i", "Weight", PrivacyTuple("pr", 4, 1, 4))
        pol = PolicyEntry("Weight", PrivacyTuple("pr", 2, 2, 2))
        model = self._model(3.0, 1.0, 5.0, 2.0)
        assert conf(pref, pol, model) == 60.0

    def test_bob_row_equals_80(self):
        pref = PreferenceEntry("i", "Weight", PrivacyTuple("pr", 2, 1, 1))
        pol = PolicyEntry("Weight", PrivacyTuple("pr", 2, 2, 2))
        model = self._model(4.0, 1.0, 3.0, 2.0)
        assert conf(pref, pol, model) == 80.0

    def test_alice_row_equals_0(self):
        pref = PreferenceEntry("i", "Weight", PrivacyTuple("pr", 4, 3, 5))
        pol = PolicyEntry("Weight", PrivacyTuple("pr", 2, 2, 2))
        model = self._model(1.0, 1.0, 2.0, 1.0)
        assert conf(pref, pol, model) == 0.0

    def test_incomparable_is_zero_despite_sensitivities(self):
        pref = PreferenceEntry("i", "Weight", PrivacyTuple("other", 0, 0, 0))
        pol = PolicyEntry("Weight", PrivacyTuple("pr", 2, 2, 2))
        assert conf(pref, pol, self._model(9, 9, 9, 9)) == 0.0

    def test_default_sensitivities_are_neutral(self):
        pref = PreferenceEntry("i", "Weight", PrivacyTuple("pr", 0, 0, 0))
        pol = PolicyEntry("Weight", PrivacyTuple("pr", 1, 2, 3))
        assert conf(pref, pol) == 6.0  # raw exceedance 1+2+3

    def test_exceedance_scales_linearly(self):
        pol = PolicyEntry("Weight", PrivacyTuple("pr", 2, 2, 2))
        model = self._model(2.0, 1.0, 1.0, 1.0)
        one = conf(
            PreferenceEntry("i", "Weight", PrivacyTuple("pr", 1, 2, 2)), pol, model
        )
        two = conf(
            PreferenceEntry("i", "Weight", PrivacyTuple("pr", 0, 2, 2)), pol, model
        )
        assert two == 2 * one


class TestViolationIndicator:
    """Definition 1."""

    def _policy(self):
        return HousePolicy([("weight", PrivacyTuple("billing", 2, 2, 2))])

    def test_violated_when_any_dimension_exceeds(self):
        prefs = ProviderPreferences(
            "i", [("weight", PrivacyTuple("billing", 2, 1, 2))]
        )
        assert violation_indicator(prefs, self._policy()) == 1

    def test_not_violated_when_dominating(self):
        prefs = ProviderPreferences(
            "i", [("weight", PrivacyTuple("billing", 2, 2, 2))]
        )
        assert violation_indicator(prefs, self._policy()) == 0

    def test_strictness_boundary(self):
        # Exactly equal ranks: p[dim] < p'[dim] is false everywhere.
        prefs = ProviderPreferences(
            "i", [("weight", PrivacyTuple("billing", 2, 2, 2))]
        )
        assert violation_indicator(prefs, self._policy()) == 0

    def test_unknown_purpose_triggers_implicit_zero_violation(self):
        prefs = ProviderPreferences(
            "i", [("weight", PrivacyTuple("research", 4, 4, 4))]
        )
        assert violation_indicator(prefs, self._policy()) == 1

    def test_implicit_zero_disabled_hides_that_violation(self):
        prefs = ProviderPreferences(
            "i", [("weight", PrivacyTuple("research", 4, 4, 4))]
        )
        assert (
            violation_indicator(prefs, self._policy(), implicit_zero=False) == 0
        )

    def test_policy_on_unprovided_attribute_never_violates(self):
        prefs = ProviderPreferences(
            "i", [("age", PrivacyTuple("billing", 9, 9, 9))]
        )
        assert violation_indicator(prefs, self._policy()) == 0

    def test_empty_policy_never_violates(self):
        prefs = ProviderPreferences(
            "i", [("weight", PrivacyTuple("billing", 0, 0, 0))]
        )
        assert violation_indicator(prefs, HousePolicy([])) == 0

    def test_zero_rank_policy_never_violates(self):
        policy = HousePolicy([("weight", PrivacyTuple("billing", 0, 0, 0))])
        prefs = ProviderPreferences(
            "i", [("weight", PrivacyTuple("billing", 0, 0, 0))]
        )
        assert violation_indicator(prefs, policy) == 0


class TestFindViolations:
    def test_findings_carry_full_attribution(self):
        policy = HousePolicy([("weight", PrivacyTuple("billing", 3, 2, 2))])
        prefs = ProviderPreferences(
            "i", [("weight", PrivacyTuple("billing", 1, 2, 2))]
        )
        findings = find_violations(prefs, policy)
        assert len(findings) == 1
        f = findings[0]
        assert f.provider_id == "i"
        assert f.attribute == "weight"
        assert f.purpose == "billing"
        assert f.dimension is Dimension.VISIBILITY
        assert (f.preference_value, f.policy_value, f.amount) == (1, 3, 2)
        assert not f.implicit

    def test_implicit_findings_flagged(self):
        policy = HousePolicy([("weight", PrivacyTuple("marketing", 1, 1, 1))])
        prefs = ProviderPreferences(
            "i", [("weight", PrivacyTuple("billing", 2, 2, 2))]
        )
        findings = find_violations(prefs, policy)
        assert findings
        assert all(f.implicit for f in findings)

    def test_indicator_consistent_with_findings(self):
        policy = HousePolicy([("weight", PrivacyTuple("billing", 3, 2, 2))])
        violated = ProviderPreferences(
            "i", [("weight", PrivacyTuple("billing", 1, 2, 2))]
        )
        safe = ProviderPreferences(
            "j", [("weight", PrivacyTuple("billing", 3, 2, 2))]
        )
        assert bool(find_violations(violated, policy)) == bool(
            violation_indicator(violated, policy)
        )
        assert bool(find_violations(safe, policy)) == bool(
            violation_indicator(safe, policy)
        )

    def test_weighted_sum_matches_conf_sum(self):
        model = SensitivityModel(
            AttributeSensitivities({"weight": 4.0}),
            {
                "i": ProviderSensitivity(
                    "i",
                    {"weight": DimensionSensitivity(2.0, 1.0, 3.0, 2.0)},
                )
            },
        )
        policy = HousePolicy([("weight", PrivacyTuple("billing", 3, 3, 3))])
        prefs = ProviderPreferences(
            "i", [("weight", PrivacyTuple("billing", 1, 1, 1))]
        )
        findings = find_violations(prefs, policy, model)
        total = sum(f.weighted for f in findings)
        pref_entry = prefs.entries[0]
        pol_entry = policy.entries[0]
        assert total == conf(pref_entry, pol_entry, model)

    def test_multiple_policy_tuples_all_compared(self):
        policy = HousePolicy(
            [
                ("weight", PrivacyTuple("billing", 3, 2, 2)),
                ("weight", PrivacyTuple("billing", 2, 3, 2)),
            ]
        )
        prefs = ProviderPreferences(
            "i", [("weight", PrivacyTuple("billing", 2, 2, 2))]
        )
        findings = find_violations(prefs, policy)
        assert {f.dimension for f in findings} == {
            Dimension.VISIBILITY,
            Dimension.GRANULARITY,
        }

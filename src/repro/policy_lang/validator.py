"""Semantic validation of policy-language documents against a taxonomy.

The parser's structural checks guarantee documents are well-formed; this
module checks they *mean* something in a given deployment: purposes are
registered, level names exist on their ladders, ranks are in range, and —
for preference documents — explicit preferences only mention attributes
the provider claims to have supplied.

These checks are implemented as the document-layer rules of the
:mod:`repro.lint` static analyzer (codes ``PVL001``-``PVL003``); the
``validate_*`` functions below are thin back-compat wrappers that run
those rules and flatten the coded diagnostics into the historical
human-readable problem strings (empty when the document is valid) rather
than raising on first error, so UIs and audit pipelines can present
everything at once.  ``strict=True`` converts a non-empty result into a
:class:`PolicyDocumentError`.  New code should prefer
:func:`repro.lint.lint_documents`, which keeps codes, severities,
locations, and payloads intact.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..exceptions import PolicyDocumentError
from ..taxonomy.builder import Taxonomy
from .ast import PolicyDocument, PreferenceDocument
from .parser import policy_document, preference_document

#: The lint codes equivalent to the historical validator checks.
POLICY_VALIDATION_CODES = ("PVL001", "PVL002")
PREFERENCE_VALIDATION_CODES = ("PVL001", "PVL002", "PVL003")


def _run_document_rules(context, codes) -> list[str]:
    """Run the selected lint rules and flatten to legacy problem strings."""
    from ..lint.registry import run_rules

    return [
        f"{diagnostic.location.describe()}: {diagnostic.message}"
        for diagnostic in run_rules(context, select=codes)
    ]


def validate_policy_document(
    raw: Mapping | PolicyDocument,
    taxonomy: Taxonomy,
    *,
    strict: bool = False,
) -> list[str]:
    """Semantic problems in a policy document (empty list when valid)."""
    from ..lint.registry import LintContext

    document = raw if isinstance(raw, PolicyDocument) else policy_document(raw)
    problems = _run_document_rules(
        LintContext(taxonomy=taxonomy, policy_doc=document),
        POLICY_VALIDATION_CODES,
    )
    if strict and problems:
        raise PolicyDocumentError("; ".join(problems))
    return problems


def validate_preference_document(
    raw: Mapping | PreferenceDocument,
    taxonomy: Taxonomy,
    *,
    strict: bool = False,
) -> list[str]:
    """Semantic problems in a preference document (empty list when valid)."""
    from ..lint.registry import LintContext

    document = (
        raw if isinstance(raw, PreferenceDocument) else preference_document(raw)
    )
    problems = _run_document_rules(
        LintContext(taxonomy=taxonomy, preference_docs=(document,)),
        PREFERENCE_VALIDATION_CODES,
    )
    if strict and problems:
        raise PolicyDocumentError("; ".join(problems))
    return problems

"""Merging worker metric snapshots into a parent registry.

The parallel executor runs each worker task under its own in-process
registry and ships ``snapshot(include_samples=True)`` documents back
with the results; the parent folds them in via ``merge_snapshot``.
These tests pin the merge semantics: counters add, gauges take the
last-written value, timers absorb exact count/total/max (samples are
best-effort, capped at ``MAX_TIMER_SAMPLES``).
"""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry
from repro.obs.metrics import MAX_TIMER_SAMPLES


class TestTimerAbsorb:
    def test_absorb_is_exact_on_count_total_max(self):
        registry = MetricsRegistry()
        timer = registry.timer("t")
        timer.observe(1.0)
        timer.absorb(3, 6.0, 4.0, (0.5, 1.5, 4.0))
        assert timer.count == 4
        assert timer.total == 7.0
        assert timer.summary()["max"] == 4.0

    def test_absorb_keeps_samples_up_to_cap(self):
        registry = MetricsRegistry()
        timer = registry.timer("t")
        timer.absorb(MAX_TIMER_SAMPLES + 10, float(MAX_TIMER_SAMPLES + 10),
                     1.0, [1.0] * (MAX_TIMER_SAMPLES + 10))
        assert len(timer.samples) == MAX_TIMER_SAMPLES
        # The aggregate stays exact even though samples were dropped.
        assert timer.count == MAX_TIMER_SAMPLES + 10

    def test_absorb_rejects_negative_aggregates(self):
        timer = MetricsRegistry().timer("t")
        with pytest.raises(ValueError):
            timer.absorb(-1, 0.0, 0.0)
        with pytest.raises(ValueError):
            timer.absorb(1, -0.5, 0.0)


class TestMergeSnapshot:
    def test_counters_add_gauges_set_timers_absorb(self):
        worker = MetricsRegistry()
        worker.counter("engine.batch.full_evaluations").inc(3)
        worker.gauge("pool.depth").set(7.0)
        worker.timer("engine.batch.evaluate_seconds").observe(0.25)
        worker.timer("engine.batch.evaluate_seconds").observe(0.75)

        parent = MetricsRegistry()
        parent.counter("engine.batch.full_evaluations").inc(1)
        parent.gauge("pool.depth").set(2.0)
        parent.merge_snapshot(worker.snapshot(include_samples=True))

        merged = parent.snapshot()
        counters = {c["name"]: c["value"] for c in merged["counters"]}
        gauges = {g["name"]: g["value"] for g in merged["gauges"]}
        timers = {t["name"]: t for t in merged["timers"]}
        assert counters["engine.batch.full_evaluations"] == 4.0
        assert gauges["pool.depth"] == 7.0
        assert timers["engine.batch.evaluate_seconds"]["count"] == 2
        assert timers["engine.batch.evaluate_seconds"]["total"] == 1.0
        assert timers["engine.batch.evaluate_seconds"]["max"] == 0.75

    def test_merge_preserves_labels(self):
        worker = MetricsRegistry()
        worker.counter("faults.fired", site="db.execute", kind="locked").inc()
        parent = MetricsRegistry()
        parent.merge_snapshot(worker.snapshot())
        assert (
            parent.counter("faults.fired", site="db.execute", kind="locked").value
            == 1.0
        )

    def test_merge_is_associative_on_counters_and_timers(self):
        """Folding worker snapshots one by one equals folding them merged."""
        workers = []
        for k in range(3):
            registry = MetricsRegistry()
            registry.counter("tasks").inc(k + 1)
            registry.timer("seconds").observe(0.5 * (k + 1))
            workers.append(registry.snapshot(include_samples=True))
        one_by_one = MetricsRegistry()
        for snapshot in workers:
            one_by_one.merge_snapshot(snapshot)
        assert one_by_one.counter("tasks").value == 6.0
        assert one_by_one.timer("seconds").count == 3
        assert one_by_one.timer("seconds").total == 3.0

    def test_merge_ignores_span_trees(self):
        parent = MetricsRegistry()
        parent.merge_snapshot({"counters": [], "spans": [{"name": "x"}]})
        assert parent.snapshot()["counters"] == []

    def test_default_snapshot_shape_is_unchanged(self):
        """``include_samples`` defaults off so exported JSON stays stable."""
        registry = MetricsRegistry()
        registry.timer("t").observe(0.1)
        (entry,) = registry.snapshot()["timers"]
        assert "samples" not in entry
        (entry,) = registry.snapshot(include_samples=True)["timers"]
        assert entry["samples"] == [0.1]

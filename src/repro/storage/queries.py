"""Hardened connection handling plus typed row helpers.

:func:`connect` is the single place the storage layer (and the run
journal) obtains sqlite connections, so hardening lives here:

* ``PRAGMA foreign_keys = ON`` and :class:`sqlite3.Row` rows, as always;
* ``PRAGMA busy_timeout`` so concurrent writers block briefly instead of
  failing instantly;
* WAL journal mode (file databases only) so readers never block writers;
* bounded exponential-backoff retry on ``database is locked`` — both at
  connect time (:func:`connect`) and for arbitrary operations
  (:func:`with_locked_retry`);
* fault interposition: while a
  :class:`~repro.resilience.faults.FaultPlan` is activated, every
  connection is wrapped in a
  :class:`~repro.resilience.faults.FaultProxy` so chaos tests can inject
  locked/disk-full errors at exact statement boundaries.

The small row/tuple conversion helpers shared by the repository and
enforcement layers also live here, so neither hands raw tuples around.
"""

from __future__ import annotations

import sqlite3
import time
from collections.abc import Callable
from typing import TypeVar

from ..core.tuples import PrivacyTuple
from ..obs import active_observer

#: Default ``PRAGMA busy_timeout`` in milliseconds.
BUSY_TIMEOUT_MS = 5000

#: Default bounded-retry attempts for locked databases.
LOCKED_RETRY_ATTEMPTS = 5

#: First backoff sleep in seconds; doubles per attempt.
LOCKED_RETRY_BASE_SECONDS = 0.05

_T = TypeVar("_T")


def _is_locked(error: sqlite3.OperationalError) -> bool:
    """Whether *error* is sqlite's transient lock-contention error."""
    message = str(error).lower()
    return "database is locked" in message or "table is locked" in message


def with_locked_retry(
    operation: Callable[[], _T],
    *,
    attempts: int = LOCKED_RETRY_ATTEMPTS,
    base_delay: float = LOCKED_RETRY_BASE_SECONDS,
    sleep: Callable[[float], None] = time.sleep,
) -> _T:
    """Run *operation*, retrying locked-database errors with backoff.

    Only ``sqlite3.OperationalError: database is locked`` (and table
    locks) are retried; every other error propagates immediately.  The
    final attempt's error propagates unchanged, so callers still see the
    real sqlite exception once the bounded budget is exhausted.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    for attempt in range(attempts):
        try:
            return operation()
        except sqlite3.OperationalError as error:
            if not _is_locked(error) or attempt == attempts - 1:
                raise
            obs = active_observer()
            if obs is not None:
                obs.inc("storage.locked_retries")
            sleep(base_delay * (2**attempt))
    raise AssertionError("unreachable")  # pragma: no cover


def _fault_plan():
    # Imported lazily: repro.resilience.journal imports this module, so a
    # top-level import here would be circular.
    from ..resilience.faults import active_plan

    return active_plan()


def _open_connection(path: str, busy_timeout_ms: int) -> sqlite3.Connection:
    plan = _fault_plan()
    if plan is not None:
        plan.check("db.connect")
    connection = sqlite3.connect(path)
    try:
        connection.row_factory = sqlite3.Row
        connection.execute("PRAGMA foreign_keys = ON")
        connection.execute(f"PRAGMA busy_timeout = {int(busy_timeout_ms)}")
        if path != ":memory:":
            # WAL lets readers proceed while a writer holds the log; it is
            # a no-op request for in-memory databases.
            connection.execute("PRAGMA journal_mode = WAL").fetchone()
            connection.execute("PRAGMA synchronous = NORMAL")
    except BaseException:
        connection.close()
        raise
    return connection


def connect(
    path: str,
    *,
    busy_timeout_ms: int = BUSY_TIMEOUT_MS,
    attempts: int = LOCKED_RETRY_ATTEMPTS,
    base_delay: float = LOCKED_RETRY_BASE_SECONDS,
    sleep: Callable[[float], None] = time.sleep,
) -> sqlite3.Connection:
    """Open a connection with the library's standard pragmas, hardened.

    Locked-database errors during the open/pragma handshake are retried
    up to *attempts* times with exponential backoff starting at
    *base_delay* seconds.  While a fault plan is activated the returned
    connection is a :class:`~repro.resilience.faults.FaultProxy`.
    """
    connection = with_locked_retry(
        lambda: _open_connection(path, busy_timeout_ms),
        attempts=attempts,
        base_delay=base_delay,
        sleep=sleep,
    )
    obs = active_observer()
    if obs is not None:
        obs.inc("storage.connections")
    plan = _fault_plan()
    if plan is not None:
        from ..resilience.faults import FaultProxy

        return FaultProxy(connection, plan)  # type: ignore[return-value]
    return connection


def tuple_from_row(row: sqlite3.Row) -> PrivacyTuple:
    """Build a :class:`PrivacyTuple` from a policy/preference row."""
    return PrivacyTuple(
        purpose=row["purpose"],
        visibility=row["visibility"],
        granularity=row["granularity"],
        retention=row["retention"],
    )


def tuple_params(privacy_tuple: PrivacyTuple) -> tuple[str, int, int, int]:
    """The tuple's four columns in insertion order."""
    return (
        privacy_tuple.purpose,
        privacy_tuple.visibility,
        privacy_tuple.granularity,
        privacy_tuple.retention,
    )

"""Unit tests for the batch engine's caching, delta, and certify paths."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    DefaultModel,
    HousePolicy,
    Population,
    PrivacyTuple,
    Provider,
    ProviderPreferences,
    ViolationEngine,
)
from repro.exceptions import UnknownProviderError, ValidationError
from repro.perf import (
    BatchViolationEngine,
    CompiledPopulation,
    policy_fingerprint,
)


def _provider(pid: str, ranks=(1, 1, 1), threshold=4.0) -> Provider:
    return Provider(
        preferences=ProviderPreferences(
            pid,
            [
                ("weight", PrivacyTuple("billing", *ranks)),
                ("name", PrivacyTuple("research", *ranks)),
            ],
        ),
        threshold=threshold,
    )


@pytest.fixture()
def population() -> Population:
    return Population(
        [
            _provider("p0", (1, 1, 1), threshold=2.0),
            _provider("p1", (3, 3, 3), threshold=10.0),
            _provider("p2", (0, 0, 0), threshold=0.5),
        ]
    )


@pytest.fixture()
def wide_policy() -> HousePolicy:
    return HousePolicy(
        [
            ("weight", PrivacyTuple("billing", 4, 4, 4)),
            ("name", PrivacyTuple("research", 2, 2, 2)),
        ],
        name="wide",
    )


class TestFingerprint:
    def test_name_independent(self, wide_policy):
        renamed = HousePolicy(wide_policy.entries, name="other-name")
        assert policy_fingerprint(wide_policy) == policy_fingerprint(renamed)

    def test_order_independent(self, wide_policy):
        reversed_entries = HousePolicy(
            tuple(reversed(wide_policy.entries)), name="reversed"
        )
        assert policy_fingerprint(wide_policy) == policy_fingerprint(
            reversed_entries
        )

    def test_distinguishes_entries(self, wide_policy):
        other = HousePolicy(
            [("weight", PrivacyTuple("billing", 4, 4, 4))], name="wide"
        )
        assert policy_fingerprint(wide_policy) != policy_fingerprint(other)


class TestConstruction:
    def test_accepts_precompiled_population(self, population, wide_policy):
        compiled = CompiledPopulation(population)
        engine = BatchViolationEngine(compiled)
        assert engine.compiled is compiled
        assert engine.population is population
        report = engine.evaluate(wide_policy)
        assert report.n_providers == 3

    def test_rejects_overrides_with_precompiled(self, population):
        compiled = CompiledPopulation(population)
        with pytest.raises(ValidationError):
            BatchViolationEngine(compiled, default_model=DefaultModel())

    def test_rejects_bad_cache_bound(self, population):
        with pytest.raises(ValidationError):
            BatchViolationEngine(population, max_cached_reports=0)

    def test_rejects_non_policy(self, population):
        engine = BatchViolationEngine(population)
        with pytest.raises(ValidationError):
            engine.evaluate("not a policy")  # type: ignore[arg-type]


class TestCaching:
    def test_same_policy_cached_once(self, population, wide_policy):
        engine = BatchViolationEngine(population)
        engine.evaluate(wide_policy)
        assert engine.cached_policies == 1
        engine.evaluate(wide_policy)
        assert engine.cached_policies == 1

    def test_cache_hits_across_names(self, population, wide_policy):
        engine = BatchViolationEngine(population)
        first = engine.evaluate(wide_policy)
        renamed = HousePolicy(wide_policy.entries, name="renamed")
        second = engine.evaluate(renamed)
        assert engine.cached_policies == 1
        # Same arrays (one evaluation), fresh name on the report.
        assert second.violations is first.violations
        assert second.policy_name == "renamed"

    def test_eviction_keeps_results_correct(self, population, wide_policy):
        engine = BatchViolationEngine(population, max_cached_reports=2)
        policies = [
            HousePolicy(
                [("weight", PrivacyTuple("billing", v, v, v))],
                name=f"v{v}",
            )
            for v in range(5)
        ]
        for policy in policies:
            engine.evaluate(policy)
        assert engine.cached_policies == 2
        # Re-evaluating an evicted policy still matches the oracle.
        report = engine.evaluate(policies[0])
        expected = ViolationEngine(policies[0], population).report()
        assert report.total_violations == expected.total_violations
        assert report.violated_ids() == expected.violated_ids()

    def test_evaluate_policies_returns_in_order(self, population, wide_policy):
        engine = BatchViolationEngine(population)
        narrow = HousePolicy(
            [("weight", PrivacyTuple("billing", 1, 1, 1))], name="narrow"
        )
        reports = engine.evaluate_policies([wide_policy, narrow, wide_policy])
        assert [r.policy_name for r in reports] == ["wide", "narrow", "wide"]
        assert engine.cached_policies == 2


class TestDeltaPath:
    def test_single_column_change_matches_full(self, population):
        engine = BatchViolationEngine(population)
        base = HousePolicy(
            [
                ("weight", PrivacyTuple("billing", 2, 2, 2)),
                ("name", PrivacyTuple("research", 2, 2, 2)),
            ],
            name="base",
        )
        engine.evaluate(base)
        # Only the "weight" column moves: the delta path fires.
        stepped = HousePolicy(
            [
                ("weight", PrivacyTuple("billing", 3, 3, 3)),
                ("name", PrivacyTuple("research", 2, 2, 2)),
            ],
            name="stepped",
        )
        report = engine.evaluate(stepped)
        expected = ViolationEngine(stepped, population).report()
        assert report.total_violations == expected.total_violations
        assert report.violated_ids() == expected.violated_ids()
        assert report.defaulted_ids() == expected.defaulted_ids()

    def test_column_removal_and_addition(self, population):
        engine = BatchViolationEngine(population)
        engine.evaluate(
            HousePolicy(
                [
                    ("weight", PrivacyTuple("billing", 3, 3, 3)),
                    ("name", PrivacyTuple("research", 2, 2, 2)),
                ],
                name="both",
            )
        )
        # Drop one column, add another: still must match the oracle.
        swapped = HousePolicy(
            [
                ("weight", PrivacyTuple("billing", 3, 3, 3)),
                ("weight", PrivacyTuple("research", 1, 2, 1)),
            ],
            name="swapped",
        )
        report = engine.evaluate(swapped)
        expected = ViolationEngine(swapped, population).report()
        assert report.total_violations == expected.total_violations
        assert report.violated_ids() == expected.violated_ids()


class TestReportAccessors:
    def test_per_provider_lookups(self, population, wide_policy):
        engine = BatchViolationEngine(population)
        report = engine.evaluate(wide_policy)
        oracle = ViolationEngine(wide_policy, population)
        for outcome in oracle.outcomes():
            assert report.violation_of(outcome.provider_id) == outcome.violation
            assert report.is_violated(outcome.provider_id) == outcome.violated
            assert report.is_defaulted(outcome.provider_id) == outcome.defaulted

    def test_unknown_provider_raises(self, population, wide_policy):
        report = BatchViolationEngine(population).evaluate(wide_policy)
        with pytest.raises(UnknownProviderError):
            report.violation_of("mallory")

    def test_str_mentions_policy_and_probabilities(self, population, wide_policy):
        report = BatchViolationEngine(population).evaluate(wide_policy)
        text = str(report)
        assert "wide" in text and "P(W)" in text


class TestCertify:
    def test_exact_certificate_matches_reference(self, population, wide_policy):
        engine = BatchViolationEngine(population)
        certificate = engine.certify(wide_policy, 0.5)
        reference = ViolationEngine(wide_policy, population).certify(0.5)
        assert certificate == reference
        assert certificate.exhaustive is True

    def test_early_exit_flags_non_exhaustive(self, population, wide_policy):
        engine = BatchViolationEngine(population)
        certificate = engine.certify(wide_policy, 0.0, early_exit=True)
        assert certificate.satisfied is False
        assert certificate.exhaustive is False
        # The reported fraction is a lower bound on the true P(W).
        exact = ViolationEngine(wide_policy, population).certify(0.0)
        assert certificate.violation_probability <= exact.violation_probability
        assert certificate.violation_probability > 0.0

    def test_early_exit_within_budget_is_exact(self, population, wide_policy):
        engine = BatchViolationEngine(population)
        certificate = engine.certify(wide_policy, 1.0, early_exit=True)
        exact = ViolationEngine(wide_policy, population).certify(1.0)
        assert certificate == exact
        assert certificate.exhaustive is True

    def test_early_exit_on_cached_policy_is_exact(self, population, wide_policy):
        engine = BatchViolationEngine(population)
        engine.evaluate(wide_policy)  # already cached: nothing to save
        certificate = engine.certify(wide_policy, 0.0, early_exit=True)
        assert certificate.exhaustive is True
        assert certificate == ViolationEngine(wide_policy, population).certify(0.0)

    def test_empty_population_certifies_trivially(self, wide_policy):
        engine = BatchViolationEngine(Population([]))
        certificate = engine.certify(wide_policy, 0.0)
        assert certificate.satisfied is True
        assert certificate.n_providers == 0

    def test_rejects_invalid_alpha(self, population, wide_policy):
        engine = BatchViolationEngine(population)
        with pytest.raises(ValidationError):
            engine.certify(wide_policy, 1.5)


class TestReferenceEngine:
    def test_reference_engine_shares_models(self, population, wide_policy):
        default_model = DefaultModel({"p0": 0.0}, default_threshold=math.inf)
        engine = BatchViolationEngine(population, default_model=default_model)
        oracle = engine.reference_engine(wide_policy)
        report = engine.evaluate(wide_policy)
        expected = oracle.report()
        assert report.defaulted_ids() == expected.defaulted_ids()
        assert report.total_violations == expected.total_violations

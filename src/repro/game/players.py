"""House strategies for the iterated widening game.

A strategy sees the history of :class:`~repro.game.equilibrium.GameRound`
outcomes and proposes the next move: a widening step, or ``None`` to stop.
Provider behaviour needs no strategy object — Definition 4 already *is*
their strategy (leave when ``Violation_i > v_i``), evaluated by the core
model each round.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

from .._validation import check_int
from ..exceptions import GameError
from ..simulation.widening import WideningStep


@runtime_checkable
class HouseStrategy(Protocol):
    """The house's decision rule in the iterated widening game."""

    def propose(self, history: Sequence["GameRoundView"]) -> WideningStep | None:
        """The next widening move, or ``None`` to stop widening."""
        ...


class GameRoundView(Protocol):
    """The slice of a game round a strategy may observe.

    Matches :class:`repro.game.equilibrium.GameRound`; declared as a
    protocol so strategies are testable with plain stand-ins.
    """

    round_index: int
    n_remaining: int
    utility: float


class FixedWidening:
    """Widen by the same step for a fixed number of rounds, then stop."""

    def __init__(self, step: WideningStep, rounds: int) -> None:
        if step.is_noop():
            raise GameError("a fixed-widening strategy needs a non-noop step")
        self._step = step
        self._rounds = check_int(rounds, "rounds", minimum=1)

    def propose(self, history: Sequence[GameRoundView]) -> WideningStep | None:
        if len(history) >= self._rounds + 1:  # +1: round 0 is the base policy
            return None
        return self._step


class GreedyWidening:
    """Keep widening while the last round improved utility.

    The myopic best-response dynamic: the house cannot see the future, so
    it widens until the most recent move made things worse, then stops.
    One overshoot round is therefore part of the play — exactly the
    "accumulated violations hurt the collector" effect.
    """

    def __init__(self, step: WideningStep, *, max_rounds: int = 50) -> None:
        if step.is_noop():
            raise GameError("a greedy strategy needs a non-noop step")
        self._step = step
        self._max_rounds = check_int(max_rounds, "max_rounds", minimum=1)

    def propose(self, history: Sequence[GameRoundView]) -> WideningStep | None:
        if len(history) >= self._max_rounds + 1:
            return None
        if len(history) >= 2 and history[-1].utility < history[-2].utility:
            return None
        return self._step


class CautiousHouse:
    """Widen only while projected attrition stays within a budget.

    The strategy stops as soon as cumulative attrition (relative to the
    starting population) exceeds *attrition_budget* — a house honouring an
    explicit retention target, the planning use-case of the default CDF.
    """

    def __init__(
        self,
        step: WideningStep,
        *,
        attrition_budget: float = 0.1,
        max_rounds: int = 50,
    ) -> None:
        if step.is_noop():
            raise GameError("a cautious strategy needs a non-noop step")
        if not 0.0 <= attrition_budget <= 1.0:
            raise GameError(
                f"attrition_budget must be in [0, 1], got {attrition_budget}"
            )
        self._step = step
        self._budget = attrition_budget
        self._max_rounds = check_int(max_rounds, "max_rounds", minimum=1)

    def propose(self, history: Sequence[GameRoundView]) -> WideningStep | None:
        if len(history) >= self._max_rounds + 1:
            return None
        if history:
            initial = history[0].n_remaining
            current = history[-1].n_remaining
            if initial > 0 and (initial - current) / initial > self._budget:
                return None
        return self._step

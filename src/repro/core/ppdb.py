"""The alpha-PPDB (Definition 3): ``P(W) <= alpha``.

A database is an *alpha privacy-preserving database* when the probability
that a randomly selected provider's privacy is violated does not exceed a
threshold ``alpha``.  :func:`certify_alpha_ppdb` produces a structured,
deterministic certificate — the artifact Section 10 envisions a house
publishing so providers can audit compliance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from .._validation import check_probability
from .policy import HousePolicy
from .population import Population
from .probability import violation_probability
from .violation import violation_indicator


@dataclass(frozen=True, slots=True)
class PPDBCertificate:
    """The outcome of an alpha-PPDB check, with the evidence attached.

    ``violated_providers`` lists the ids with ``w_i = 1`` so an auditor can
    recompute ``violation_probability = len(violated_providers) / n_providers``
    and verify ``satisfied == (violation_probability <= alpha)``.
    """

    alpha: float
    violation_probability: float
    satisfied: bool
    n_providers: int
    violated_providers: tuple[Hashable, ...]
    policy_name: str

    @property
    def margin(self) -> float:
        """``alpha - P(W)``: positive slack when satisfied, negative excess otherwise."""
        return self.alpha - self.violation_probability

    def __str__(self) -> str:
        verdict = "SATISFIED" if self.satisfied else "VIOLATED"
        return (
            f"alpha-PPDB[{self.policy_name}]: P(W)={self.violation_probability:.4f} "
            f"vs alpha={self.alpha:.4f} -> {verdict} "
            f"({len(self.violated_providers)}/{self.n_providers} providers violated)"
        )


def is_alpha_ppdb(
    population: Population,
    policy: HousePolicy,
    alpha: float,
    *,
    implicit_zero: bool = True,
) -> bool:
    """Definition 3: True when ``P(W) <= alpha``."""
    alpha = check_probability(alpha, "alpha")
    return (
        violation_probability(population, policy, implicit_zero=implicit_zero)
        <= alpha
    )


def certify_alpha_ppdb(
    population: Population,
    policy: HousePolicy,
    alpha: float,
    *,
    implicit_zero: bool = True,
) -> PPDBCertificate:
    """Check Definition 3 and return the full certificate."""
    alpha = check_probability(alpha, "alpha")
    violated = tuple(
        provider.provider_id
        for provider in population
        if violation_indicator(
            provider.preferences, policy, implicit_zero=implicit_zero
        )
    )
    n = len(population)
    p_w = len(violated) / n if n else 0.0
    if n == 0:
        # An empty database trivially violates nobody.
        return PPDBCertificate(
            alpha=alpha,
            violation_probability=0.0,
            satisfied=True,
            n_providers=0,
            violated_providers=(),
            policy_name=policy.name,
        )
    return PPDBCertificate(
        alpha=alpha,
        violation_probability=p_w,
        satisfied=p_w <= alpha,
        n_providers=n,
        violated_providers=violated,
        policy_name=policy.name,
    )

"""Fixed-width text tables for the benchmark harness and examples.

The paper reports its results as small tables (Table 1) and derivations;
the bench harness prints the reproduced rows in the same spirit.  This is
a tiny, dependency-free formatter: column headers, right-aligned numbers,
left-aligned text, a separator rule.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def _render_cell(value: object) -> str:
    """One cell's text: floats get compact fixed-point, the rest ``str``."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        if value == int(value) and abs(value) < 1e12:
            return str(int(value))
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render a fixed-width table.

    Numeric cells (int/float) are right-aligned; everything else is
    left-aligned.  Returns a string ending without a trailing newline.
    """
    rendered_rows = [[_render_cell(cell) for cell in row] for row in rows]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    # Right-align a column when every one of its rendered cells parses as a
    # number (this keeps the function single-pass over `rows`, which may be
    # a generator).
    numeric_column = [True] * len(headers)
    for row in rendered_rows:
        for index, cell in enumerate(row):
            try:
                float(cell)
            except ValueError:
                numeric_column[index] = False

    def align(cell: str, index: int) -> str:
        if numeric_column[index]:
            return cell.rjust(widths[index])
        return cell.ljust(widths[index])

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(align(cell, i) for i, cell in enumerate(row)))
    return "\n".join(lines)

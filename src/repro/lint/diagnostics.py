"""Structured diagnostics: the linter's unit of output.

A :class:`Diagnostic` is one finding with a stable code (``PVL001``,
``PVL101``, ...), a :class:`Severity`, a :class:`SourceLocation` pointing
into the offending document, and a machine-readable ``payload``.  The
human-readable ``message`` never carries information absent from the
payload, so downstream tooling (CI annotations, SARIF uploads, audit
pipelines) can consume findings without string parsing.
"""

from __future__ import annotations

import enum
from collections.abc import Mapping
from dataclasses import dataclass, field
from types import MappingProxyType

from ..exceptions import LintConfigurationError


class Severity(enum.Enum):
    """How seriously a diagnostic should be taken.

    ``ERROR`` marks findings that make the documents meaningless or
    guarantee a violation; ``WARNING`` marks findings that are almost
    certainly mistakes but do not break the model; ``INFO`` marks
    advisory observations.  Severities are totally ordered
    (``INFO < WARNING < ERROR``) so reports can be gated on a floor.
    """

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        """The severity's position in the ``INFO < WARNING < ERROR`` order."""
        return _SEVERITY_RANKS[self]

    def __lt__(self, other: "Severity") -> bool:
        if not isinstance(other, Severity):
            return NotImplemented
        return self.rank < other.rank

    def __le__(self, other: "Severity") -> bool:
        if not isinstance(other, Severity):
            return NotImplemented
        return self.rank <= other.rank

    def __gt__(self, other: "Severity") -> bool:
        if not isinstance(other, Severity):
            return NotImplemented
        return self.rank > other.rank

    def __ge__(self, other: "Severity") -> bool:
        if not isinstance(other, Severity):
            return NotImplemented
        return self.rank >= other.rank

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        """Resolve ``"error"`` / ``"warning"`` / ``"info"`` (case-insensitive)."""
        try:
            return cls(name.strip().lower())
        except ValueError:
            raise LintConfigurationError(
                f"unknown severity {name!r}; expected one of "
                f"{', '.join(s.value for s in cls)}"
            ) from None


_SEVERITY_RANKS = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}

#: The document kinds a location may point into, in report order.
DOCUMENT_KINDS = ("taxonomy", "policy", "population", "candidate")


@dataclass(frozen=True, slots=True)
class SourceLocation:
    """Where in which document a diagnostic points.

    ``document`` is one of :data:`DOCUMENT_KINDS`; ``name`` is the policy
    name or provider id (when applicable); ``index`` is the rule / entry
    index within the document; ``field`` names the offending field
    (``"purpose"``, ``"granularity"``, ...).
    """

    document: str
    name: str | None = None
    index: int | None = None
    field: str | None = None

    def __post_init__(self) -> None:
        if self.document not in DOCUMENT_KINDS:
            raise LintConfigurationError(
                f"unknown document kind {self.document!r}; expected one of "
                f"{', '.join(DOCUMENT_KINDS)}"
            )

    def describe(self) -> str:
        """A human-readable prefix for text output.

        Matches the legacy validator's context strings for policy and
        preference documents (``policy 'x' rule 0``, ``preferences of
        'alice' entry 1``) so the back-compat wrappers reproduce their
        historical output exactly.
        """
        if self.document == "policy":
            base = f"policy {self.name!r}" if self.name is not None else "policy"
            return f"{base} rule {self.index}" if self.index is not None else base
        if self.document == "candidate":
            base = (
                f"candidate {self.name!r}" if self.name is not None else "candidate"
            )
            return f"{base} rule {self.index}" if self.index is not None else base
        if self.document == "population":
            if self.name is None:
                return "population"
            base = f"preferences of {self.name!r}"
            return f"{base} entry {self.index}" if self.index is not None else base
        return "taxonomy"

    def as_dict(self) -> dict[str, str | int | None]:
        """The location as a plain JSON-safe dict."""
        return {
            "document": self.document,
            "name": self.name,
            "index": self.index,
            "field": self.field,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "SourceLocation":
        """The inverse of :meth:`as_dict` (cache / baseline reload)."""
        return cls(
            document=data["document"],
            name=data.get("name"),
            index=data.get("index"),
            field=data.get("field"),
        )


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One linter finding: code + severity + location + payload.

    ``payload`` carries the machine-readable facts (witness provider ids,
    exceedance amounts, break-even utilities, ...); it is frozen into a
    read-only mapping at construction.
    """

    code: str
    severity: Severity
    message: str
    location: SourceLocation
    payload: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "payload", MappingProxyType(dict(self.payload)))

    def __str__(self) -> str:
        return (
            f"{self.location.describe()}: {self.severity.value}"
            f"[{self.code}]: {self.message}"
        )

    def as_dict(self) -> dict[str, object]:
        """The diagnostic as a plain JSON-safe dict."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "location": self.location.as_dict(),
            "payload": dict(self.payload),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Diagnostic":
        """The inverse of :meth:`as_dict`.

        Used by the incremental cache and the baseline machinery to
        round-trip diagnostics through JSON.  Payload values survive as
        their JSON forms (tuples come back as lists), which every
        renderer treats identically.
        """
        return cls(
            code=data["code"],
            severity=Severity.from_name(data["severity"]),
            message=data["message"],
            location=SourceLocation.from_dict(data["location"]),
            payload=data.get("payload", {}),
        )


#: Canonical ordering of tuple-spec fields inside one rule/entry.  Used to
#: sort diagnostics for one document into the order the legacy validator
#: reported them: purpose first, then the ordered dimensions, then
#: attribute-level findings.
FIELD_ORDER = {
    "purpose": 0,
    "visibility": 1,
    "granularity": 2,
    "retention": 3,
    "attribute": 4,
}


def sort_key(diagnostic: Diagnostic) -> tuple:
    """Deterministic report order: document, position, field, code."""
    location = diagnostic.location
    return (
        DOCUMENT_KINDS.index(location.document),
        str(location.name) if location.name is not None else "",
        location.index if location.index is not None else -1,
        FIELD_ORDER.get(location.field or "", 9),
        diagnostic.code,
    )

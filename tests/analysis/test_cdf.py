"""Unit tests for the empirical default CDF."""

from __future__ import annotations

import pytest

from repro.analysis import DefaultCDF, default_cdf_from_sweep
from repro.exceptions import ValidationError
from repro.simulation import run_expansion_sweep


@pytest.fixture(scope="module")
def sweep():
    from repro.datasets import healthcare_scenario

    scenario = healthcare_scenario(80, seed=5)
    return run_expansion_sweep(
        scenario.population, scenario.policy, scenario.taxonomy, max_steps=5
    )


@pytest.fixture(scope="module")
def cdf(sweep):
    return default_cdf_from_sweep(sweep)


class TestConstruction:
    def test_from_sweep(self, cdf, sweep):
        assert cdf.population_size == sweep.rows[0].n_current
        assert len(cdf.steps) == len(sweep.rows)

    def test_non_decreasing_enforced(self):
        with pytest.raises(ValidationError):
            DefaultCDF(steps=(0, 1), cumulative_defaults=(5, 3), population_size=10)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            DefaultCDF(steps=(0,), cumulative_defaults=(0, 1), population_size=10)


class TestQueries:
    def test_defaults_at_known_steps(self, cdf, sweep):
        for row, expected in zip(sweep.rows, cdf.cumulative_defaults):
            assert cdf.defaults_at(row.step) == expected

    def test_defaults_before_first_step_zero(self, cdf):
        assert cdf.defaults_at(-1) == 0

    def test_defaults_beyond_last_step_saturates(self, cdf):
        assert cdf.defaults_at(999) == cdf.cumulative_defaults[-1]

    def test_fraction_at(self, cdf):
        for step in cdf.steps:
            assert cdf.fraction_at(step) == pytest.approx(
                cdf.defaults_at(step) / cdf.population_size
            )

    def test_step_zero_is_zero_defaults(self, cdf):
        # Anchored scenario: the base policy defaults nobody.
        assert cdf.defaults_at(0) == 0

    def test_widest_step_within_budget_zero(self, cdf):
        assert cdf.widest_step_within(0.0) == 0

    def test_widest_step_within_full_budget(self, cdf):
        assert cdf.widest_step_within(1.0) == cdf.steps[-1]

    def test_widest_step_monotone_in_budget(self, cdf):
        budgets = [0.0, 0.1, 0.25, 0.5, 0.75, 1.0]
        widths = [cdf.widest_step_within(b) for b in budgets]
        assert widths == sorted(widths)

    def test_widest_step_respects_budget(self, cdf):
        step = cdf.widest_step_within(0.3)
        assert cdf.fraction_at(step) <= 0.3

    def test_invalid_budget_rejected(self, cdf):
        with pytest.raises(ValidationError):
            cdf.widest_step_within(1.5)

    def test_saturation_detected(self):
        saturated = DefaultCDF(
            steps=(0, 1, 2), cumulative_defaults=(0, 5, 5), population_size=10
        )
        growing = DefaultCDF(
            steps=(0, 1, 2), cumulative_defaults=(0, 2, 5), population_size=10
        )
        assert saturated.is_saturated()
        assert not growing.is_saturated()

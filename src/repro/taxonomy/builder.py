"""The :class:`Taxonomy`: ordered domains + purpose registry in one object.

A taxonomy is the *vocabulary* a deployment shares between its policy
documents, its preference documents, and its storage layer: which purposes
exist, and what the named levels of each ordered dimension mean.  The core
arithmetic works on integer ranks and never needs a taxonomy; the taxonomy
is what lets humans write ``"third-party"`` and auditors read it back.

:func:`standard_taxonomy` assembles the canonical ladders from
:mod:`repro.taxonomy.levels` with a caller-supplied purpose set.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from ..core.dimensions import (
    Dimension,
    ORDERED_DIMENSIONS,
    OrderedDomain,
    UnboundedRetention,
)
from ..core.purpose import PurposeLattice, PurposeRegistry
from ..core.tuples import PrivacyTuple
from ..exceptions import ValidationError
from .levels import granularity_domain, retention_domain, visibility_domain

#: Either kind of domain a taxonomy may hold for an ordered dimension.
DomainLike = OrderedDomain | UnboundedRetention


class Taxonomy:
    """Domains for the ordered dimensions plus the purpose vocabulary.

    Parameters
    ----------
    purposes:
        The purpose registry (or an iterable of purpose names).
    domains:
        Map from ordered :class:`Dimension` to its domain.  All three
        ordered dimensions must be covered.
    purpose_lattice:
        Optional partial order over the purposes (the [5] extension).
        When present, its purposes must match the registry.
    """

    __slots__ = ("_purposes", "_domains", "_lattice")

    def __init__(
        self,
        purposes: PurposeRegistry | Iterable[str],
        domains: Mapping[Dimension, DomainLike],
        *,
        purpose_lattice: PurposeLattice | None = None,
    ) -> None:
        if not isinstance(purposes, PurposeRegistry):
            purposes = PurposeRegistry(purposes)
        self._purposes = purposes
        missing = [d for d in ORDERED_DIMENSIONS if d not in domains]
        if missing:
            raise ValidationError(
                f"taxonomy is missing domains for: "
                f"{', '.join(d.value for d in missing)}"
            )
        for dimension, domain in domains.items():
            if not isinstance(dimension, Dimension) or not dimension.is_ordered:
                raise ValidationError(
                    f"taxonomy domains must be keyed by ordered dimensions, "
                    f"got {dimension!r}"
                )
            if domain.dimension is not dimension:
                raise ValidationError(
                    f"domain {domain!r} belongs to {domain.dimension.value}, "
                    f"not {dimension.value}"
                )
        self._domains = {d: domains[d] for d in ORDERED_DIMENSIONS}
        if purpose_lattice is not None:
            if purpose_lattice.purposes != purposes.purposes:
                raise ValidationError(
                    "purpose lattice and registry cover different purposes"
                )
        self._lattice = purpose_lattice

    @property
    def purposes(self) -> PurposeRegistry:
        """The purpose vocabulary."""
        return self._purposes

    @property
    def purpose_lattice(self) -> PurposeLattice | None:
        """The optional purpose partial order."""
        return self._lattice

    def domain(self, dimension: Dimension) -> DomainLike:
        """The domain for an ordered *dimension*."""
        if not isinstance(dimension, Dimension) or not dimension.is_ordered:
            raise ValidationError(
                f"taxonomies hold domains for ordered dimensions only, "
                f"got {dimension!r}"
            )
        return self._domains[dimension]

    def tuple(
        self,
        purpose: str,
        visibility: str | int,
        granularity: str | int,
        retention: str | int,
    ) -> PrivacyTuple:
        """Build a validated :class:`PrivacyTuple` from names or ranks.

        This is the bridge between human-readable policy documents and the
        rank-based arithmetic: each ordered value may be a level name
        (resolved through the taxonomy's ladder) or a raw integer rank
        (validated against the ladder's range).
        """
        self._purposes.validate(purpose)
        return PrivacyTuple(
            purpose=purpose,
            visibility=self._domains[Dimension.VISIBILITY].rank_of(visibility),
            granularity=self._domains[Dimension.GRANULARITY].rank_of(granularity),
            retention=self._domains[Dimension.RETENTION].rank_of(retention),
        )

    def describe(self, privacy_tuple: PrivacyTuple) -> dict[str, str]:
        """Render a tuple's ranks back to level names for reports."""
        return {
            "purpose": privacy_tuple.purpose,
            "visibility": self._domains[Dimension.VISIBILITY].level_of(
                privacy_tuple.visibility
            ),
            "granularity": self._domains[Dimension.GRANULARITY].level_of(
                privacy_tuple.granularity
            ),
            "retention": self._domains[Dimension.RETENTION].level_of(
                privacy_tuple.retention
            ),
        }

    def validate_tuple(self, privacy_tuple: PrivacyTuple) -> PrivacyTuple:
        """Check a tuple's purpose and ranks against this taxonomy."""
        self._purposes.validate(privacy_tuple.purpose)
        for dimension in ORDERED_DIMENSIONS:
            self._domains[dimension].rank_of(privacy_tuple.rank(dimension))
        return privacy_tuple

    def with_purposes(self, purposes: Iterable[str]) -> "Taxonomy":
        """A copy with additional purposes registered."""
        merged = set(self._purposes.purposes) | set(purposes)
        return Taxonomy(
            PurposeRegistry(merged), self._domains, purpose_lattice=None
        )


class TaxonomyBuilder:
    """Fluent construction of custom taxonomies.

    Example
    -------
    >>> taxonomy = (
    ...     TaxonomyBuilder()
    ...     .with_purposes(["billing", "research"])
    ...     .with_visibility(["none", "clinic", "insurer", "public"])
    ...     .with_granularity(["none", "range", "exact"])
    ...     .with_retention_unbounded()
    ...     .build()
    ... )
    """

    def __init__(self) -> None:
        self._purposes: list[str] = []
        self._domains: dict[Dimension, DomainLike] = {}
        self._lattice: PurposeLattice | None = None

    def with_purposes(self, purposes: Iterable[str]) -> "TaxonomyBuilder":
        """Set the purpose vocabulary."""
        self._purposes = list(purposes)
        return self

    def with_purpose_lattice(self, lattice: PurposeLattice) -> "TaxonomyBuilder":
        """Attach a purpose partial order (implies the purpose set)."""
        self._lattice = lattice
        self._purposes = sorted(lattice.purposes)
        return self

    def with_visibility(self, levels: Iterable[str]) -> "TaxonomyBuilder":
        """Set a custom visibility ladder."""
        self._domains[Dimension.VISIBILITY] = OrderedDomain(
            Dimension.VISIBILITY, list(levels)
        )
        return self

    def with_granularity(self, levels: Iterable[str]) -> "TaxonomyBuilder":
        """Set a custom granularity ladder."""
        self._domains[Dimension.GRANULARITY] = OrderedDomain(
            Dimension.GRANULARITY, list(levels)
        )
        return self

    def with_retention(self, levels: Iterable[str]) -> "TaxonomyBuilder":
        """Set a custom named retention ladder."""
        self._domains[Dimension.RETENTION] = OrderedDomain(
            Dimension.RETENTION, list(levels)
        )
        return self

    def with_retention_unbounded(self) -> "TaxonomyBuilder":
        """Measure retention on an open-ended integer scale."""
        self._domains[Dimension.RETENTION] = UnboundedRetention()
        return self

    def build(self) -> Taxonomy:
        """Assemble the taxonomy, defaulting any unset ladder to canonical."""
        domains = dict(self._domains)
        domains.setdefault(Dimension.VISIBILITY, visibility_domain())
        domains.setdefault(Dimension.GRANULARITY, granularity_domain())
        domains.setdefault(Dimension.RETENTION, retention_domain())
        return Taxonomy(
            self._purposes, domains, purpose_lattice=self._lattice
        )


def standard_taxonomy(purposes: Iterable[str]) -> Taxonomy:
    """The canonical taxonomy of Barker et al. with the given purposes."""
    return Taxonomy(
        purposes,
        {
            Dimension.VISIBILITY: visibility_domain(),
            Dimension.GRANULARITY: granularity_domain(),
            Dimension.RETENTION: retention_domain(),
        },
    )

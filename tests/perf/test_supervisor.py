"""Parity and lifecycle for the supervised worker pool.

The :class:`~repro.perf.supervisor.SupervisedExecutor` runs the same
per-shard kernels as the unsupervised :class:`ShardExecutor`, so absent
faults it must be **bit-for-bit identical** to the serial
:class:`BatchViolationEngine` — evaluation, sweeps, certification, and
the shard-level replay/callback machinery that backs journaled parallel
sweeps.  Chaos (kills, stalls, degradation) lives in
``test_supervisor_chaos.py``; these tests pin the healthy path.
"""

from __future__ import annotations

import glob
import random

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.obs import observed
from repro.perf import (
    BatchViolationEngine,
    ShardExecutor,
    SupervisedExecutor,
    make_batch_engine,
)

from tests.properties.test_batch_parity import (
    _random_policy,
    _random_population,
)


def _assert_reports_identical(parallel, serial) -> None:
    assert parallel.policy_name == serial.policy_name
    assert parallel.n_providers == serial.n_providers
    assert parallel.n_violated == serial.n_violated
    assert parallel.n_defaulted == serial.n_defaulted
    assert parallel.violation_probability == serial.violation_probability
    assert parallel.default_probability == serial.default_probability
    assert parallel.total_violations == serial.total_violations
    assert parallel.provider_ids == serial.provider_ids
    assert parallel.segments == serial.segments
    assert np.array_equal(parallel.violations, serial.violations)
    assert np.array_equal(parallel.thresholds, serial.thresholds)
    assert np.array_equal(parallel.violated, serial.violated)
    assert np.array_equal(parallel.defaulted, serial.defaulted)


def _no_leaked_segments() -> bool:
    return glob.glob("/dev/shm/pvl_*") == []


# ---------------------------------------------------------------------------
# parity with the serial engine
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_evaluate_matches_serial_bit_for_bit(seed):
    rng = random.Random(seed)
    population = _random_population(rng)
    policy = _random_policy(rng, name=f"supervised-{seed}")
    serial = BatchViolationEngine(population)
    with SupervisedExecutor(population, workers=2) as executor:
        _assert_reports_identical(
            executor.evaluate(policy), serial.evaluate(policy)
        )
    assert _no_leaked_segments()


def test_policy_sweep_matches_serial_and_caches():
    rng = random.Random(11)
    population = _random_population(rng)
    policies = [_random_policy(rng, name=f"p{i}") for i in range(4)]
    serial = BatchViolationEngine(population)
    with SupervisedExecutor(population, workers=2) as executor:
        reports = executor.evaluate_policies(policies)
        for report, policy in zip(reports, policies):
            _assert_reports_identical(report, serial.evaluate(policy))
        assert executor.cached_policies == len(policies)
        # A repeat evaluation is served from the cache, not the pool.
        again = executor.evaluate(policies[0])
        _assert_reports_identical(again, reports[0])
    assert _no_leaked_segments()


@pytest.mark.parametrize("early_exit", [False, True])
def test_certify_matches_serial(early_exit):
    rng = random.Random(21)
    population = _random_population(rng)
    policy = _random_policy(rng, name="certify")
    serial = BatchViolationEngine(population)
    for alpha in (0.0, 0.25, 0.5, 1.0):
        with SupervisedExecutor(population, workers=2) as executor:
            got = executor.certify(policy, alpha, early_exit=early_exit)
            want = serial.certify(policy, alpha)
            assert got.satisfied == want.satisfied
            assert got.n_providers == want.n_providers
            if not early_exit:
                assert got.violation_probability == want.violation_probability
                assert got.violated_providers == want.violated_providers
    assert _no_leaked_segments()


def test_certify_static_rejects_early_exit():
    rng = random.Random(22)
    population = _random_population(rng)
    policy = _random_policy(rng, name="static")
    with SupervisedExecutor(population, workers=2) as executor:
        with pytest.raises(ValidationError):
            executor.certify(policy, 0.5, static=True, early_exit=True)
        certificate = executor.certify(policy, 0.5, static=True)
        assert certificate.policy_name == policy.name
    assert _no_leaked_segments()


# ---------------------------------------------------------------------------
# shard replay and checkpoint callbacks (the journal integration surface)
# ---------------------------------------------------------------------------


def test_sharded_evaluation_reports_every_new_shard():
    rng = random.Random(31)
    population = _random_population(rng)
    policy = _random_policy(rng, name="sharded")
    serial = BatchViolationEngine(population)
    seen: dict[tuple[int, int], tuple] = {}
    with SupervisedExecutor(population, workers=2) as executor:
        bounds = list(executor.bounds)
        violations, counts = executor.evaluate_arrays_sharded(
            policy,
            on_shard=lambda lo, hi, v, c: seen.__setitem__(
                (lo, hi), (list(map(float, v)), list(map(float, c)))
            ),
        )
        report = executor.assemble(policy.name, violations, counts)
    _assert_reports_identical(report, serial.evaluate(policy))
    assert sorted(seen) == sorted(bounds)
    assert _no_leaked_segments()


def test_precomputed_shards_are_replayed_not_recomputed():
    rng = random.Random(32)
    population = _random_population(rng)
    policy = _random_policy(rng, name="replay")
    serial = BatchViolationEngine(population)
    # First pass records every shard, exactly as the journal would.
    recorded: dict[tuple[int, int], tuple] = {}
    with SupervisedExecutor(population, workers=2) as executor:
        executor.evaluate_arrays_sharded(
            policy,
            on_shard=lambda lo, hi, v, c: recorded.__setitem__(
                (lo, hi), (list(map(float, v)), list(map(float, c)))
            ),
        )
    # Second pass replays a strict subset; only the rest is dispatched.
    replayed = dict(list(sorted(recorded.items()))[:1])
    computed: list[tuple[int, int]] = []
    with SupervisedExecutor(population, workers=2) as executor:
        violations, counts = executor.evaluate_arrays_sharded(
            policy,
            precomputed=replayed,
            on_shard=lambda lo, hi, v, c: computed.append((lo, hi)),
        )
        report = executor.assemble(policy.name, violations, counts)
    _assert_reports_identical(report, serial.evaluate(policy))
    assert set(computed).isdisjoint(replayed)
    assert _no_leaked_segments()


def test_stale_precomputed_bounds_are_recomputed():
    """Journaled bounds from a different worker count are ignored safely."""
    rng = random.Random(33)
    population = _random_population(rng)
    policy = _random_policy(rng, name="stale-bounds")
    serial = BatchViolationEngine(population)
    n = len(population)
    bogus = {(0, n + 7): ([0.0] * n, [0.0] * n)}
    with SupervisedExecutor(population, workers=2) as executor:
        violations, counts = executor.evaluate_arrays_sharded(
            policy, precomputed=bogus
        )
        report = executor.assemble(policy.name, violations, counts)
    _assert_reports_identical(report, serial.evaluate(policy))
    assert _no_leaked_segments()


# ---------------------------------------------------------------------------
# pool lifecycle
# ---------------------------------------------------------------------------


def test_warm_pool_survives_repeated_sweeps():
    rng = random.Random(41)
    population = _random_population(rng)
    with SupervisedExecutor(population, workers=2) as executor:
        assert executor.live_workers == 2
        for i in range(3):
            executor.evaluate(_random_policy(rng, name=f"warm-{i}"))
        # No deaths, no respawns: the same two processes served all
        # three sweeps.
        assert executor.live_workers == 2
        assert executor.restarts == 0
        assert executor.degradations == ()
    assert _no_leaked_segments()


def test_close_is_idempotent_and_releases_everything():
    rng = random.Random(42)
    population = _random_population(rng)
    executor = SupervisedExecutor(population, workers=2)
    assert glob.glob(f"/dev/shm/{executor.segment_name}")
    executor.close()
    executor.close()
    assert executor.live_workers == 0
    assert _no_leaked_segments()


def test_supervision_parameters_are_validated():
    rng = random.Random(43)
    population = _random_population(rng)
    for kwargs in (
        {"heartbeat_interval": 0.0},
        {"shard_timeout": 0.0},
        {"max_shard_retries": -1},
        {"max_respawns": -1},
        {"retry_base_delay": -0.5},
        {"shards": 0},
    ):
        with pytest.raises(ValidationError):
            SupervisedExecutor(population, workers=2, **kwargs)
    assert _no_leaked_segments()


def test_dispatch_is_supervised_by_default():
    rng = random.Random(44)
    population = _random_population(rng)
    engine = make_batch_engine(population, workers=2)
    assert isinstance(engine.inner_engine, SupervisedExecutor)
    engine.close()
    engine = make_batch_engine(population, workers=2, supervised=False)
    assert isinstance(engine.inner_engine, ShardExecutor)
    engine.close()
    assert _no_leaked_segments()


def test_healthy_run_metrics():
    rng = random.Random(45)
    population = _random_population(rng)
    policy = _random_policy(rng, name="metrics")
    with observed() as obs:
        with SupervisedExecutor(population, workers=2) as executor:
            executor.evaluate(policy)
        snapshot = obs.snapshot()
    counters = {c["name"]: c["value"] for c in snapshot["counters"]}
    gauges = {g["name"]: g["value"] for g in snapshot["gauges"]}
    assert counters["supervisor.tasks"] >= 1.0
    assert "supervisor.restarts" not in counters
    assert "supervisor.degraded_shards" not in counters
    assert gauges["supervisor.workers"] == 2.0

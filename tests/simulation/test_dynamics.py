"""Unit tests for the multi-round default dynamics."""

from __future__ import annotations

import pytest

from repro.simulation import run_dynamics
from repro.simulation.dynamics import surviving_ids


@pytest.fixture(scope="module")
def scenario():
    from repro.datasets import healthcare_scenario

    return healthcare_scenario(80, seed=5)


@pytest.fixture(scope="module")
def outcomes(scenario):
    return run_dynamics(
        scenario.population,
        scenario.policy,
        scenario.taxonomy,
        rounds=6,
        per_provider_utility=scenario.per_provider_utility,
        extra_utility_per_round=scenario.extra_utility_per_step,
    )


class TestDynamicsStructure:
    def test_round_zero_is_base_policy(self, outcomes):
        assert outcomes[0].round_index == 0
        assert outcomes[0].policy_name.endswith("@r0")

    def test_population_non_increasing(self, outcomes):
        remaining = [o.n_remaining for o in outcomes]
        assert remaining == sorted(remaining, reverse=True)

    def test_rounds_chain_populations(self, outcomes):
        for previous, current in zip(outcomes, outcomes[1:]):
            assert current.n_start == previous.n_remaining

    def test_departures_are_permanent(self, outcomes):
        seen: set = set()
        for outcome in outcomes:
            departed = set(outcome.defaulted_providers)
            assert not departed & seen
            seen |= departed

    def test_retention_rate(self, outcomes):
        for outcome in outcomes:
            expected = (
                outcome.n_remaining / outcome.n_start
                if outcome.n_start
                else 1.0
            )
            assert outcome.retention_rate == pytest.approx(expected)

    def test_baseline_round_has_no_defaults(self, outcomes):
        # Anchored scenario: the base policy violates nobody.
        assert outcomes[0].n_defaulted == 0


class TestDynamicsVsStaticSweep:
    def test_total_defaults_bounded_by_static_sweep(self, scenario, outcomes):
        """Path dependence: dynamics can never lose more providers than the
        static sweep at the same widening level, because severities are
        evaluated on the same policies and departures only remove providers.
        """
        from repro.simulation import run_expansion_sweep

        sweep = run_expansion_sweep(
            scenario.population,
            scenario.policy,
            scenario.taxonomy,
            max_steps=len(outcomes) - 1,
        )
        dynamic_total = sum(o.n_defaulted for o in outcomes)
        static_total = sweep.rows[-1].n_current - sweep.rows[-1].n_future
        assert dynamic_total == static_total

    def test_surviving_ids_complement_departures(self, scenario, outcomes):
        survivors = set(surviving_ids(outcomes, scenario.population))
        departed = {
            pid for o in outcomes for pid in o.defaulted_providers
        }
        assert survivors | departed == set(scenario.population.ids())
        assert not survivors & departed


class TestDynamicsEdgeCases:
    def test_single_round(self, scenario):
        outcomes = run_dynamics(
            scenario.population, scenario.policy, scenario.taxonomy, rounds=1
        )
        assert len(outcomes) == 1

    def test_invalid_rounds_rejected(self, scenario):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            run_dynamics(
                scenario.population, scenario.policy, scenario.taxonomy, rounds=0
            )

    def test_utility_formula(self, outcomes, scenario):
        for outcome in outcomes:
            expected = outcome.n_remaining * (
                scenario.per_provider_utility
                + scenario.extra_utility_per_step * outcome.round_index
            )
            assert outcome.utility == pytest.approx(expected)

"""The house privacy policy ``HP`` (Section 4, Eqs. 2-4).

A :class:`HousePolicy` is a finite set of ``<attribute, privacy-tuple>``
entries.  Equation 4's per-attribute restriction ``HP^j`` is
:meth:`HousePolicy.for_attribute`.  Policies are immutable; widening
(Section 9) produces *new* policies via :meth:`widened` or the operators in
:mod:`repro.simulation.widening`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping

from ..exceptions import ValidationError
from .dimensions import Dimension, ORDERED_DIMENSIONS
from .tuples import PolicyEntry, PrivacyTuple


class HousePolicy:
    """An immutable house privacy policy: a set of :class:`PolicyEntry`.

    The constructor deduplicates exact-duplicate entries (``HP`` is a set in
    the paper) but rejects nothing else: a house may legitimately hold
    several tuples for the same attribute (e.g. one per purpose, or several
    visibility grants for the same purpose).

    Parameters
    ----------
    entries:
        The policy entries.  Accepts :class:`PolicyEntry` objects or
        ``(attribute, PrivacyTuple)`` pairs.
    name:
        Optional label used in reports ("policy-v2", "widened+1", ...).
    """

    __slots__ = ("_entries", "_by_attribute", "_name", "_fingerprint", "_columns")

    def __init__(
        self,
        entries: Iterable[PolicyEntry | tuple[str, PrivacyTuple]] = (),
        *,
        name: str = "house-policy",
    ) -> None:
        normalized: list[PolicyEntry] = []
        seen: set[PolicyEntry] = set()
        for entry in entries:
            if isinstance(entry, tuple):
                attribute, privacy_tuple = entry
                entry = PolicyEntry(attribute=attribute, tuple=privacy_tuple)
            elif not isinstance(entry, PolicyEntry):
                raise ValidationError(
                    f"policy entries must be PolicyEntry or (attribute, "
                    f"PrivacyTuple) pairs, got {type(entry).__name__}"
                )
            if entry not in seen:
                seen.add(entry)
                normalized.append(entry)
        self._entries = tuple(normalized)
        by_attribute: dict[str, list[PolicyEntry]] = {}
        for entry in self._entries:
            by_attribute.setdefault(entry.attribute, []).append(entry)
        self._by_attribute = {
            attribute: tuple(attr_entries)
            for attribute, attr_entries in by_attribute.items()
        }
        self._name = name
        # Lazily filled by repro.perf.batch.policy_fingerprint /
        # policy_columns; entries are immutable, so the derived forms are
        # computed at most once per policy instance.
        self._fingerprint: frozenset[tuple[str, str, int, int, int]] | None = None
        self._columns: (
            dict[tuple[str, str], tuple[tuple[int, int, int], ...]] | None
        ) = None

    @property
    def name(self) -> str:
        """Label used in reports."""
        return self._name

    @property
    def entries(self) -> tuple[PolicyEntry, ...]:
        """All policy entries, in insertion order."""
        return self._entries

    def __iter__(self) -> Iterator[PolicyEntry]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, entry: object) -> bool:
        return entry in set(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HousePolicy):
            return NotImplemented
        return frozenset(self._entries) == frozenset(other._entries)

    def __hash__(self) -> int:
        return hash(frozenset(self._entries))

    def __repr__(self) -> str:
        return f"HousePolicy({self._name!r}, {len(self._entries)} entries)"

    def attributes(self) -> tuple[str, ...]:
        """The attributes this policy covers, sorted."""
        return tuple(sorted(self._by_attribute))

    def purposes(self) -> tuple[str, ...]:
        """The distinct purposes appearing in the policy, sorted."""
        return tuple(sorted({entry.purpose for entry in self._entries}))

    def for_attribute(self, attribute: str) -> tuple[PolicyEntry, ...]:
        """Equation 4: the restriction ``HP^j`` to one attribute.

        Returns an empty tuple when the policy says nothing about the
        attribute (collecting nothing violates nobody).
        """
        return self._by_attribute.get(attribute, ())

    def for_purpose(self, purpose: str) -> tuple[PolicyEntry, ...]:
        """All entries whose tuple carries *purpose*."""
        return tuple(e for e in self._entries if e.purpose == purpose)

    def with_entries(
        self,
        extra: Iterable[PolicyEntry | tuple[str, PrivacyTuple]],
        *,
        name: str | None = None,
    ) -> "HousePolicy":
        """A new policy with *extra* entries appended."""
        return HousePolicy(
            list(self._entries) + list(extra),
            name=name if name is not None else self._name,
        )

    def without_attribute(self, attribute: str, *, name: str | None = None) -> "HousePolicy":
        """A new policy that says nothing about *attribute*."""
        return HousePolicy(
            [e for e in self._entries if e.attribute != attribute],
            name=name if name is not None else self._name,
        )

    def widened(
        self,
        deltas: Mapping[Dimension, int],
        *,
        attributes: Iterable[str] | None = None,
        purposes: Iterable[str] | None = None,
        name: str | None = None,
    ) -> "HousePolicy":
        """Section 9's policy expansion: shift ranks upward (or downward).

        Parameters
        ----------
        deltas:
            Rank shift per ordered dimension, e.g.
            ``{Dimension.VISIBILITY: 1}``.  Missing dimensions are left
            untouched.  Negative deltas *narrow* the policy; results are
            floored at rank 0.
        attributes:
            Restrict the widening to these attributes (default: all).
        purposes:
            Restrict the widening to entries with these purposes
            (default: all).
        name:
            Label for the widened policy (default: ``"<name> widened"``).
        """
        for dim in deltas:
            if not isinstance(dim, Dimension) or not dim.is_ordered:
                raise ValidationError(
                    f"widening deltas must map ordered dimensions, got {dim!r}"
                )
        attribute_filter = None if attributes is None else set(attributes)
        purpose_filter = None if purposes is None else set(purposes)
        new_entries: list[PolicyEntry] = []
        for entry in self._entries:
            in_scope = (
                (attribute_filter is None or entry.attribute in attribute_filter)
                and (purpose_filter is None or entry.purpose in purpose_filter)
            )
            if not in_scope:
                new_entries.append(entry)
                continue
            new_tuple = entry.tuple
            for dim in ORDERED_DIMENSIONS:
                delta = deltas.get(dim, 0)
                if delta:
                    new_tuple = new_tuple.shifted(dim, delta)
            new_entries.append(PolicyEntry(entry.attribute, new_tuple))
        return HousePolicy(
            new_entries,
            name=name if name is not None else f"{self._name} widened",
        )

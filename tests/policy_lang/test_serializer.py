"""Unit tests for serialisation and round-trips."""

from __future__ import annotations

import json

import pytest

from repro.core import (
    AttributeSensitivities,
    DimensionSensitivity,
    HousePolicy,
    PrivacyTuple,
    ProviderPreferences,
    ProviderSensitivity,
    SensitivityModel,
)
from repro.policy_lang import (
    parse_policy,
    parse_preferences,
    parse_sensitivities,
    policy_to_dict,
    policy_to_json,
    preferences_to_dict,
    preferences_to_json,
    sensitivities_to_dict,
)
from repro.taxonomy import standard_taxonomy


@pytest.fixture()
def taxonomy():
    return standard_taxonomy(["billing", "research"])


@pytest.fixture()
def policy() -> HousePolicy:
    return HousePolicy(
        [
            ("weight", PrivacyTuple("billing", 2, 2, 2)),
            ("age", PrivacyTuple("research", 1, 3, 4)),
        ],
        name="rt-policy",
    )


@pytest.fixture()
def prefs() -> ProviderPreferences:
    return ProviderPreferences(
        "alice",
        [("weight", PrivacyTuple("billing", 4, 3, 4))],
        attributes_provided=["weight", "age"],
    )


class TestPolicySerialization:
    def test_round_trip_with_taxonomy(self, policy, taxonomy):
        doc = policy_to_dict(policy, taxonomy)
        assert parse_policy(doc, taxonomy) == policy

    def test_round_trip_without_taxonomy_uses_ranks(self, policy, taxonomy):
        doc = policy_to_dict(policy)
        assert isinstance(doc["rules"][0]["visibility"], int)
        assert parse_policy(doc, taxonomy) == policy

    def test_level_names_emitted_with_taxonomy(self, policy, taxonomy):
        doc = policy_to_dict(policy, taxonomy)
        assert doc["rules"][0]["visibility"] == "house"

    def test_json_round_trip(self, policy, taxonomy):
        text = policy_to_json(policy, taxonomy)
        assert parse_policy(json.loads(text), taxonomy) == policy

    def test_name_preserved(self, policy, taxonomy):
        assert policy_to_dict(policy, taxonomy)["name"] == "rt-policy"

    def test_empty_policy(self, taxonomy):
        empty = HousePolicy([], name="empty")
        doc = policy_to_dict(empty, taxonomy)
        assert doc["rules"] == []
        assert parse_policy(doc, taxonomy) == empty


class TestPreferenceSerialization:
    def test_round_trip(self, prefs, taxonomy):
        doc = preferences_to_dict(prefs, taxonomy)
        assert parse_preferences(doc, taxonomy) == prefs

    def test_attributes_provided_serialized(self, prefs, taxonomy):
        doc = preferences_to_dict(prefs, taxonomy)
        assert sorted(doc["attributes_provided"]) == ["age", "weight"]

    def test_json_round_trip(self, prefs, taxonomy):
        text = preferences_to_json(prefs, taxonomy)
        assert parse_preferences(json.loads(text), taxonomy) == prefs


class TestSensitivitySerialization:
    def test_round_trip(self):
        model = SensitivityModel(
            AttributeSensitivities({"weight": 4.0}),
            {
                "ted": ProviderSensitivity(
                    "ted",
                    {"weight": DimensionSensitivity(3.0, 1.0, 5.0, 2.0)},
                )
            },
        )
        doc = sensitivities_to_dict(model)
        again = parse_sensitivities(doc)
        assert again.attribute_weight("weight") == 4.0
        assert again.datum("ted", "weight") == model.datum("ted", "weight")

    def test_neutral_model_serializes_empty(self):
        doc = sensitivities_to_dict(SensitivityModel.neutral())
        assert doc == {"attributes": {}, "providers": {}}

    def test_document_is_json_safe(self):
        model = SensitivityModel(
            AttributeSensitivities({"a": 2.0}),
            {"p": ProviderSensitivity("p", {"a": DimensionSensitivity()})},
        )
        text = json.dumps(sensitivities_to_dict(model))
        assert "providers" in json.loads(text)

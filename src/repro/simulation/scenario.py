"""Widening sweeps: the quantitative heart of Sections 9's trade-off.

A sweep walks a widening path and, at every step, evaluates the entire
violation model against a *fixed* starting population: ``P(W)``,
``P(Default)``, total severity, the surviving population ``N_future``, and
the Section 9 utilities assuming the house gains ``extra_utility_per_step
x k`` per provider at step ``k``.

The resulting rows are exactly the series the expansion benchmarks print:
utility rises while widening buys more per provider than it loses to
defaults, then crosses over and falls — the paper's "detrimental effect
upon the data collector".
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from time import perf_counter
from typing import Hashable

from .._validation import check_int, check_real
from ..obs import active_observer, span
from ..core.economics import (
    break_even_extra_utility,
    utility_current,
    utility_future,
)
from ..core.policy import HousePolicy
from ..core.population import Population
from ..exceptions import SimulationError
from ..perf import BatchReport, make_batch_engine
from ..taxonomy.builder import Taxonomy
from .widening import WideningStep, widening_path


@dataclass(frozen=True, slots=True)
class SweepRow:
    """One widening level's full evaluation."""

    step: int
    policy_name: str
    n_current: int
    n_future: int
    n_violated: int
    violation_probability: float
    default_probability: float
    total_violations: float
    extra_utility: float
    utility_current: float
    utility_future: float
    break_even_extra_utility: float
    justified: bool
    defaulted_providers: tuple[Hashable, ...]

    @property
    def utility_gain(self) -> float:
        """``Utility_future - Utility_current`` at this step."""
        return self.utility_future - self.utility_current


@dataclass(frozen=True)
class ExpansionSweep:
    """An entire widening sweep, one row per step."""

    scenario_name: str
    per_provider_utility: float
    extra_utility_per_step: float
    rows: tuple[SweepRow, ...]

    def best_step(self) -> SweepRow:
        """The widening level with the highest future utility."""
        if not self.rows:
            raise SimulationError("sweep has no rows")
        return max(self.rows, key=lambda row: (row.utility_future, -row.step))

    def crossover_step(self) -> int | None:
        """The first step whose future utility drops below the base utility.

        ``None`` when widening never becomes detrimental within the sweep.
        Step 0 is the unwidened policy, so the search starts at step 1.
        """
        if not self.rows:
            return None
        base = self.rows[0].utility_current
        for row in self.rows[1:]:
            if row.utility_future < base:
                return row.step
        return None

    def default_counts(self) -> tuple[int, ...]:
        """Cumulative defaulted-provider counts per step (for the CDF).

        Anchored to the first row's population so rows whose ``n_current``
        shrinks (multi-phase sweeps) still report cumulative, not
        incremental, defaults — mirroring
        :func:`repro.analysis.cdf.default_cdf_from_sweep`.
        """
        if not self.rows:
            return ()
        baseline = self.rows[0].n_current
        return tuple(baseline - row.n_future for row in self.rows)

    def series(self, column: str) -> tuple[float, ...]:
        """One named column across all rows (for plots and benches)."""
        return tuple(float(getattr(row, column)) for row in self.rows)


def build_sweep_row(
    report: BatchReport,
    *,
    step: int,
    n_current: int,
    per_provider_utility: float,
    extra_utility_per_step: float,
) -> SweepRow:
    """One sweep level's :class:`SweepRow` from its batch evaluation.

    The single source of the per-step arithmetic: both
    :func:`run_expansion_sweep` and the resumable runner in
    :mod:`repro.resilience.resume` build rows through this function, so
    an interrupted-and-resumed sweep is bit-for-bit identical to an
    uninterrupted one by construction.
    """
    defaulted = report.defaulted_ids()
    n_fut = n_current - len(defaulted)
    extra = extra_utility_per_step * step
    break_even = break_even_extra_utility(per_provider_utility, n_current, n_fut)
    return SweepRow(
        step=step,
        policy_name=report.policy_name,
        n_current=n_current,
        n_future=n_fut,
        n_violated=report.n_violated,
        violation_probability=report.violation_probability,
        default_probability=report.default_probability,
        total_violations=report.total_violations,
        extra_utility=extra,
        utility_current=utility_current(n_current, per_provider_utility),
        utility_future=utility_future(n_fut, per_provider_utility, extra),
        break_even_extra_utility=break_even,
        justified=extra > break_even,
        defaulted_providers=defaulted,
    )


def run_expansion_sweep(
    population: Population,
    base_policy: HousePolicy,
    taxonomy: Taxonomy,
    *,
    step: WideningStep | None = None,
    max_steps: int = 5,
    per_provider_utility: float = 1.0,
    extra_utility_per_step: float = 0.25,
    attributes: Iterable[str] | None = None,
    purposes: Iterable[str] | None = None,
    scenario_name: str = "expansion-sweep",
    implicit_zero: bool = True,
    workers: int = 1,
    guarded: bool = False,
) -> ExpansionSweep:
    """Walk a widening path, evaluating the full model at every level.

    Parameters
    ----------
    population:
        The fixed starting population (``N_current`` providers).
    base_policy:
        The current policy; assumed (and usually verified by the caller)
        to cause no defaults, matching Section 9's setup.
    taxonomy:
        Clamps widening to the ladders.
    step:
        The widening move applied per level (default: uniform +1 on all
        ordered dimensions).
    max_steps:
        Number of widening levels beyond the base policy.
    per_provider_utility:
        ``U`` — utility per provider under the base policy.
    extra_utility_per_step:
        The extra per-provider utility ``T`` gained *per widening level*;
        at level ``k`` the house enjoys ``T x k``.
    attributes, purposes:
        Restrict the widening's scope (see :func:`widen`).
    workers:
        The execution policy: ``1`` (default) evaluates in-process,
        ``0`` uses one worker per CPU, ``N > 1`` fans each level's
        evaluation over the supervised worker pool
        (:class:`~repro.perf.supervisor.SupervisedExecutor`).  Results
        are bit-for-bit identical across settings.
    guarded:
        Evaluate through the
        :class:`~repro.resilience.guardrail.GuardedBatchEngine`, which
        spot-checks every level against the reference oracle and
        degrades to it on divergence.  Composes with ``workers``.
    """
    check_int(max_steps, "max_steps", minimum=0)
    check_real(per_provider_utility, "per_provider_utility", minimum=0.0)
    check_real(extra_utility_per_step, "extra_utility_per_step", minimum=0.0)
    if step is None:
        step = WideningStep.uniform(1)
    n_current = len(population)
    rows: list[SweepRow] = []
    obs = active_observer()

    def _sweep_engine():
        if guarded:
            # Imported lazily: the resilience layer imports this module
            # (resume wraps the sweep), so a module-scope import cycles.
            from ..resilience.guardrail import GuardedBatchEngine

            return GuardedBatchEngine(
                population, implicit_zero=implicit_zero, workers=workers
            )
        return make_batch_engine(
            population, workers=workers, implicit_zero=implicit_zero
        )

    with span(
        "sweep.run",
        scenario=scenario_name,
        providers=n_current,
        max_steps=max_steps,
    ):
        # One compilation serves the whole sweep; consecutive widening
        # levels share most (attribute, purpose) columns, so the batch
        # engine's delta path (per shard, under the parallel executor)
        # re-evaluates only what each step moved.
        with _sweep_engine() as engine:
            for k, policy in widening_path(
                base_policy,
                step,
                taxonomy,
                max_steps,
                attributes=attributes,
                purposes=purposes,
            ):
                start = perf_counter() if obs is not None else 0.0
                report = engine.evaluate(policy)
                rows.append(
                    build_sweep_row(
                        report,
                        step=k,
                        n_current=n_current,
                        per_provider_utility=per_provider_utility,
                        extra_utility_per_step=extra_utility_per_step,
                    )
                )
                if obs is not None:
                    obs.inc("sweep.steps")
                    obs.observe("sweep.step_seconds", perf_counter() - start)
    return ExpansionSweep(
        scenario_name=scenario_name,
        per_provider_utility=per_provider_utility,
        extra_utility_per_step=extra_utility_per_step,
        rows=tuple(rows),
    )

"""E5 — Definition 3: the alpha-PPDB under widening, in memory and on sqlite.

Sweeps widening levels, certifying at several alphas per level: ``P(W)``
must be monotone in widening, each certificate's verdict must match
``P(W) <= alpha``, and the sqlite-backed store must produce the *same*
certificate as the in-memory engine (the storage substrate cannot change
the model's answer).
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core import ViolationEngine
from repro.simulation import WideningStep, widening_path
from repro.storage import PrivacyDatabase

from conftest import emit

ALPHAS = (0.0, 0.1, 0.25, 0.5, 1.0)


def test_alpha_ppdb_sweep(benchmark, healthcare_200):
    def certify_all():
        results = []
        for step, policy in widening_path(
            healthcare_200.policy,
            WideningStep.uniform(1),
            healthcare_200.taxonomy,
            4,
        ):
            engine = ViolationEngine(policy, healthcare_200.population)
            certificates = {
                alpha: engine.certify(alpha) for alpha in ALPHAS
            }
            results.append((step, certificates))
        return results

    results = benchmark(certify_all)

    rows = []
    for step, certificates in results:
        p_w = certificates[ALPHAS[0]].violation_probability
        rows.append(
            [
                step,
                p_w,
                *(
                    "yes" if certificates[alpha].satisfied else "no"
                    for alpha in ALPHAS
                ),
            ]
        )
    emit(
        "E5: alpha-PPDB certification vs widening (healthcare)",
        format_table(
            ["step", "P(W)", *(f"a={alpha}" for alpha in ALPHAS)], rows
        ),
    )

    probabilities = [
        certificates[ALPHAS[0]].violation_probability
        for _, certificates in results
    ]
    assert probabilities == sorted(probabilities)  # monotone in widening
    assert probabilities[0] == 0.0  # anchored baseline is a 0-PPDB
    for _, certificates in results:
        for alpha, certificate in certificates.items():
            assert certificate.satisfied == (
                certificate.violation_probability <= alpha
            )


def test_sqlite_store_agrees(benchmark, healthcare_200):
    widened = list(
        widening_path(
            healthcare_200.policy,
            WideningStep.uniform(1),
            healthcare_200.taxonomy,
            2,
        )
    )[-1][1]

    def certify_on_store():
        with PrivacyDatabase.create(":memory:") as db:
            db.install(widened, healthcare_200.population)
            return db.certify(0.25)

    stored = benchmark(certify_on_store)
    direct = ViolationEngine(widened, healthcare_200.population).certify(0.25)
    emit(
        "E5: store vs in-memory certificate",
        format_table(
            ["backend", "P(W)", "satisfied"],
            [
                ["in-memory", direct.violation_probability, str(direct.satisfied)],
                ["sqlite", stored.violation_probability, str(stored.satisfied)],
            ],
        ),
    )
    assert stored.violation_probability == pytest.approx(
        direct.violation_probability
    )
    assert stored.satisfied == direct.satisfied

"""Data-provider default (Section 7, Definition 4).

A provider defaults — stops contributing data — when their accumulated
severity exceeds a personal tolerance: ``default_i = 1`` iff
``Violation_i > v_i``.  The inequality is *strict* as printed in the
paper; the worked example depends on it (Bob's severity of 80 against a
threshold of 100 keeps him in the system).  :class:`DefaultModel` carries
the thresholds and exposes a ``strict`` switch so the threshold-semantics
ablation can quantify what ``>=`` would change.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping
from typing import Hashable

from .._validation import check_real
from ..exceptions import ValidationError
from .policy import HousePolicy
from .preferences import ProviderPreferences
from .sensitivity import SensitivityModel
from .severity import provider_violation


def provider_default(violation: float, threshold: float, *, strict: bool = True) -> int:
    """Definition 4: ``default_i`` given ``Violation_i`` and ``v_i``.

    Parameters
    ----------
    violation:
        The provider's accumulated severity ``Violation_i`` (Eq. 15).
    threshold:
        The provider's tolerance ``v_i``.
    strict:
        With the paper's strict inequality (default), the provider defaults
        only when severity strictly exceeds the threshold.
    """
    violation = check_real(violation, "violation", minimum=0.0)
    threshold = check_real(threshold, "threshold", minimum=0.0)
    if strict:
        return 1 if violation > threshold else 0
    return 1 if violation >= threshold else 0


class DefaultModel:
    """Per-provider default thresholds ``v_i`` plus evaluation helpers.

    Parameters
    ----------
    thresholds:
        Map from provider id to tolerance ``v_i``.  Providers absent from
        the map use *default_threshold*.
    default_threshold:
        Tolerance for unlisted providers.  Defaults to ``inf`` — an
        undescribed provider never defaults, which is the conservative
        reading of "we do not know their threshold".
    strict:
        Threshold semantics (see :func:`provider_default`).
    """

    __slots__ = ("_thresholds", "_default_threshold", "_strict")

    def __init__(
        self,
        thresholds: Mapping[Hashable, float] | None = None,
        *,
        default_threshold: float = math.inf,
        strict: bool = True,
    ) -> None:
        self._thresholds: dict[Hashable, float] = {}
        for provider_id, value in (thresholds or {}).items():
            self._thresholds[provider_id] = check_real(
                value, f"threshold[{provider_id!r}]", minimum=0.0
            )
        if default_threshold != math.inf:
            default_threshold = check_real(
                default_threshold, "default_threshold", minimum=0.0
            )
        self._default_threshold = default_threshold
        if not isinstance(strict, bool):
            raise ValidationError("strict must be a bool")
        self._strict = strict

    @property
    def strict(self) -> bool:
        """Whether the strict inequality of Definition 4 is used."""
        return self._strict

    @property
    def default_threshold(self) -> float:
        """Tolerance applied to providers without an explicit threshold."""
        return self._default_threshold

    def threshold(self, provider_id: Hashable) -> float:
        """``v_i`` for *provider_id*."""
        return self._thresholds.get(provider_id, self._default_threshold)

    def known_providers(self) -> frozenset[Hashable]:
        """Providers with an explicit threshold."""
        return frozenset(self._thresholds)

    def defaults(self, provider_id: Hashable, violation: float) -> int:
        """``default_i`` for one provider given their severity."""
        return provider_default(
            violation, self.threshold(provider_id), strict=self._strict
        )

    def evaluate(
        self,
        population: Iterable[ProviderPreferences],
        policy: HousePolicy,
        sensitivities: SensitivityModel | None = None,
        *,
        implicit_zero: bool = True,
    ) -> dict[Hashable, int]:
        """``default_i`` for every provider in *population* under *policy*."""
        outcomes: dict[Hashable, int] = {}
        for preferences in population:
            violation = provider_violation(
                preferences, policy, sensitivities, implicit_zero=implicit_zero
            )
            outcomes[preferences.provider_id] = self.defaults(
                preferences.provider_id, violation
            )
        return outcomes

    def with_threshold(
        self, provider_id: Hashable, threshold: float
    ) -> "DefaultModel":
        """A new model with one threshold added or replaced."""
        thresholds = dict(self._thresholds)
        thresholds[provider_id] = threshold
        return DefaultModel(
            thresholds,
            default_threshold=self._default_threshold,
            strict=self._strict,
        )

    def with_strictness(self, strict: bool) -> "DefaultModel":
        """A copy with different threshold semantics (for the ablation)."""
        return DefaultModel(
            dict(self._thresholds),
            default_threshold=self._default_threshold,
            strict=strict,
        )

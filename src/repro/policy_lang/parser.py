"""Parse policy/preference/sensitivity documents into model objects.

Two layers:

* ``*_document`` functions — raw dict to AST, structural checks only;
* ``parse_*`` functions — dict (or AST) + taxonomy to core model objects,
  resolving level names to ranks and validating purposes.

``*_from_json`` variants accept a JSON string.
"""

from __future__ import annotations

import json
from collections.abc import Mapping

from ..core.policy import HousePolicy
from ..core.preferences import ProviderPreferences
from ..core.sensitivity import (
    AttributeSensitivities,
    DimensionSensitivity,
    ProviderSensitivity,
    SensitivityModel,
)
from ..exceptions import PolicyDocumentError
from ..taxonomy.builder import Taxonomy
from .ast import PolicyDocument, PreferenceDocument, SensitivityDocument, TupleSpec

_TUPLE_KEYS = ("purpose", "visibility", "granularity", "retention")


def _tuple_spec(raw: Mapping, *, context: str) -> TupleSpec:
    """Build a :class:`TupleSpec` from one raw rule dict."""
    if not isinstance(raw, Mapping):
        raise PolicyDocumentError(
            f"{context}: each rule must be a mapping, got {type(raw).__name__}"
        )
    missing = [key for key in ("attribute", *_TUPLE_KEYS) if key not in raw]
    if missing:
        raise PolicyDocumentError(
            f"{context}: rule missing keys {missing}: {dict(raw)!r}"
        )
    unknown = set(raw) - {"attribute", *_TUPLE_KEYS}
    if unknown:
        raise PolicyDocumentError(
            f"{context}: rule has unknown keys {sorted(unknown)}"
        )
    return TupleSpec(
        attribute=raw["attribute"],
        purpose=raw["purpose"],
        visibility=raw["visibility"],
        granularity=raw["granularity"],
        retention=raw["retention"],
    )


def policy_document(raw: Mapping) -> PolicyDocument:
    """Raw dict to :class:`PolicyDocument` (structural checks only)."""
    if not isinstance(raw, Mapping):
        raise PolicyDocumentError(
            f"policy document must be a mapping, got {type(raw).__name__}"
        )
    if "rules" not in raw:
        raise PolicyDocumentError("policy document missing 'rules'")
    name = raw.get("name", "house-policy")
    rules = tuple(
        _tuple_spec(rule, context=f"policy {name!r}") for rule in raw["rules"]
    )
    return PolicyDocument(name=name, rules=rules)


def preference_document(raw: Mapping) -> PreferenceDocument:
    """Raw dict to :class:`PreferenceDocument` (structural checks only)."""
    if not isinstance(raw, Mapping):
        raise PolicyDocumentError(
            f"preference document must be a mapping, got {type(raw).__name__}"
        )
    for key in ("provider", "preferences"):
        if key not in raw:
            raise PolicyDocumentError(f"preference document missing {key!r}")
    provider = raw["provider"]
    specs = tuple(
        _tuple_spec(spec, context=f"preferences of {provider!r}")
        for spec in raw["preferences"]
    )
    attributes_provided = raw.get("attributes_provided")
    if attributes_provided is not None:
        attributes_provided = tuple(attributes_provided)
    return PreferenceDocument(
        provider=provider,
        preferences=specs,
        attributes_provided=attributes_provided,
    )


def sensitivity_document(raw: Mapping) -> SensitivityDocument:
    """Raw dict to :class:`SensitivityDocument` (structural checks only)."""
    if not isinstance(raw, Mapping):
        raise PolicyDocumentError(
            f"sensitivity document must be a mapping, got {type(raw).__name__}"
        )
    unknown = set(raw) - {"attributes", "providers"}
    if unknown:
        raise PolicyDocumentError(
            f"sensitivity document has unknown keys {sorted(unknown)}"
        )
    return SensitivityDocument(
        attributes=raw.get("attributes", {}),
        providers=raw.get("providers", {}),
    )


def parse_policy(raw: Mapping | PolicyDocument, taxonomy: Taxonomy) -> HousePolicy:
    """Lower a policy document onto a :class:`HousePolicy`.

    Level names are resolved through the taxonomy's ladders; purposes are
    validated against its registry.
    """
    document = raw if isinstance(raw, PolicyDocument) else policy_document(raw)
    entries = [
        (
            spec.attribute,
            taxonomy.tuple(
                spec.purpose, spec.visibility, spec.granularity, spec.retention
            ),
        )
        for spec in document.rules
    ]
    return HousePolicy(entries, name=document.name)


def parse_preferences(
    raw: Mapping | PreferenceDocument, taxonomy: Taxonomy
) -> ProviderPreferences:
    """Lower a preference document onto a :class:`ProviderPreferences`."""
    document = (
        raw if isinstance(raw, PreferenceDocument) else preference_document(raw)
    )
    entries = [
        (
            spec.attribute,
            taxonomy.tuple(
                spec.purpose, spec.visibility, spec.granularity, spec.retention
            ),
        )
        for spec in document.preferences
    ]
    return ProviderPreferences(
        document.provider,
        entries,
        attributes_provided=document.attributes_provided,
    )


def parse_sensitivities(raw: Mapping | SensitivityDocument) -> SensitivityModel:
    """Lower a sensitivity document onto a :class:`SensitivityModel`."""
    document = (
        raw if isinstance(raw, SensitivityDocument) else sensitivity_document(raw)
    )
    providers = {}
    for provider_id, per_attribute in document.providers.items():
        records = {}
        for attribute, record in per_attribute.items():
            unknown = set(record) - {
                "value",
                "visibility",
                "granularity",
                "retention",
            }
            if unknown:
                raise PolicyDocumentError(
                    f"sensitivity record for {provider_id!r}/{attribute!r} "
                    f"has unknown keys {sorted(unknown)}"
                )
            records[attribute] = DimensionSensitivity(
                value=record.get("value", 1.0),
                visibility=record.get("visibility", 1.0),
                granularity=record.get("granularity", 1.0),
                retention=record.get("retention", 1.0),
            )
        providers[provider_id] = ProviderSensitivity(
            provider_id=provider_id, per_attribute=records
        )
    return SensitivityModel(
        AttributeSensitivities(dict(document.attributes)), providers
    )


def policy_from_json(text: str, taxonomy: Taxonomy) -> HousePolicy:
    """Parse a JSON policy document string."""
    return parse_policy(_load_json(text, "policy"), taxonomy)


def preferences_from_json(text: str, taxonomy: Taxonomy) -> ProviderPreferences:
    """Parse a JSON preference document string."""
    return parse_preferences(_load_json(text, "preference"), taxonomy)


def _load_json(text: str, kind: str) -> Mapping:
    """Decode JSON, wrapping decode errors in the document error type."""
    try:
        decoded = json.loads(text)
    except json.JSONDecodeError as error:
        raise PolicyDocumentError(f"invalid {kind} JSON: {error}") from error
    if not isinstance(decoded, Mapping):
        raise PolicyDocumentError(
            f"{kind} document must decode to an object, got "
            f"{type(decoded).__name__}"
        )
    return decoded
